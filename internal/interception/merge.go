package interception

import (
	"sort"

	"repro/internal/ids"
)

// Merge recomputes a global §3.2 verdict from several independently
// accumulated Streams — the sharded engine's materialization path.
//
// It works because the detector's evidence is order-independent and
// per-connection: each observation contributes at most one
// (issuer, leaf-fingerprint) pair to the observed relation and at most
// one (issuer, domain) pair to the contradicted relation, regardless of
// what any other connection did. Confirmation and exclusion are pure
// functions of those two relations — an issuer is confirmed when CT
// contradicts it on >= min distinct domains, and every certificate a
// confirmed issuer was ever seen issuing is excluded — so unioning the
// per-shard relations and recomputing yields exactly the verdict a
// single Stream would have reached over the interleaved whole. Evidence
// split across shards (domain A contradicted on shard 1, domain B on
// shard 2) corroborates globally here even though neither shard alone
// confirms the issuer.
type Merge struct {
	min          int
	observed     map[string]map[ids.Fingerprint]bool
	contradicted map[string]map[string]bool
	pending      int
}

// NewMerge returns an empty accumulator confirming issuers contradicted
// on >= min domains (min <= 0 selects the paper's default of 2).
func NewMerge(min int) *Merge {
	if min <= 0 {
		min = 2
	}
	return &Merge{
		min:          min,
		observed:     map[string]map[ids.Fingerprint]bool{},
		contradicted: map[string]map[string]bool{},
	}
}

// Absorb unions one stream's evidence into the accumulator. The caller
// must synchronize access to s (the engine holds its state lock).
func (m *Merge) Absorb(s *Stream) {
	for issuer, fps := range s.observed {
		dst := m.observed[issuer]
		if dst == nil {
			dst = make(map[ids.Fingerprint]bool, len(fps))
			m.observed[issuer] = dst
		}
		for fp := range fps {
			dst[fp] = true
		}
	}
	for issuer, domains := range s.contradicted {
		dst := m.contradicted[issuer]
		if dst == nil {
			dst = make(map[string]bool, len(domains))
			m.contradicted[issuer] = dst
		}
		for d := range domains {
			dst[d] = true
		}
	}
	m.pending += s.PendingCount()
}

// PendingCount sums the absorbed streams' parked observations.
func (m *Merge) PendingCount() int { return m.pending }

// Result materializes the merged verdict in Detector.Run's format:
// sorted confirmed issuers plus the union exclusion set.
func (m *Merge) Result() *Result {
	res := &Result{
		CandidateCount: len(m.contradicted),
		ExcludedCerts:  map[ids.Fingerprint]bool{},
	}
	for issuer, domains := range m.contradicted {
		if len(domains) < m.min {
			continue
		}
		res.Issuers = append(res.Issuers, issuer)
		for fp := range m.observed[issuer] {
			res.ExcludedCerts[fp] = true
		}
	}
	sort.Strings(res.Issuers)
	return res
}
