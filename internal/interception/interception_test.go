package interception

import (
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ct"
	"repro/internal/ids"
	"repro/internal/psl"
	"repro/internal/truststore"
	"repro/internal/zeek"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func mkCert(issuerOrg, subjectCN string, sans ...string) *certmodel.CertInfo {
	c := &certmodel.CertInfo{
		SerialHex: "0A", Version: 3,
		IssuerOrg: issuerOrg, IssuerCN: issuerOrg + " CA",
		SubjectCN: subjectCN, SANDNS: sans,
		NotBefore: date(2022, 1, 1), NotAfter: date(2023, 1, 1),
	}
	c.Fingerprint = certmodel.SyntheticFingerprint(c, subjectCN+issuerOrg)
	return c
}

func TestProxyIntercept(t *testing.T) {
	p := &Proxy{IssuerOrg: "Corp AV Proxy", IssuerCN: "Corp AV Root"}
	orig := mkCert("DigiCert Inc", "www.bank.com", "www.bank.com")
	re := p.Intercept(orig, "conn1")
	if re.IssuerOrg != "Corp AV Proxy" {
		t.Fatal("issuer not replaced")
	}
	if re.SubjectCN != orig.SubjectCN || len(re.SANDNS) != 1 {
		t.Fatal("subject must be preserved")
	}
	if re.Fingerprint == orig.Fingerprint {
		t.Fatal("fingerprint must change")
	}
	re2 := p.Intercept(orig, "conn1")
	if re2.Fingerprint != re.Fingerprint {
		t.Fatal("same discriminator should reproduce the same cert")
	}
}

func buildScenario(t *testing.T) (*zeek.Dataset, *Detector) {
	t.Helper()
	bundle := truststore.DefaultBundle()
	log := ct.NewLog()
	pslList := psl.Default()

	ds := zeek.NewDataset()
	proxy := &Proxy{IssuerOrg: "Sneaky Inspection CA", IssuerCN: "Sneaky Root"}

	// Three genuine public sites, logged in CT with their true issuers.
	for i, dom := range []string{"bank.com", "shop.com", "mail.com"} {
		orig := mkCert("DigiCert Inc", "www."+dom, "www."+dom)
		log.AddChain(ct.Entry{Domain: dom, IssuerOrg: "DigiCert Inc"})
		// The proxy re-signs each: these are what the tap observes.
		re := proxy.Intercept(orig, dom)
		ds.AddCert(re)
		ds.Conns = append(ds.Conns, zeek.SSLRecord{
			TS: date(2022, 6, 1+i), UID: ids.UID("C" + dom), SNI: "www." + dom,
			RespPort: 443, Established: true,
			ServerChain: []ids.Fingerprint{re.Fingerprint}, Weight: 10,
		})
	}

	// A legitimate private-CA server: CT doesn't know it; must survive.
	private := mkCert("Globus Online", "gridftp.virginia.edu")
	ds.AddCert(private)
	ds.Conns = append(ds.Conns, zeek.SSLRecord{
		TS: date(2022, 6, 9), UID: "Cpriv", SNI: "",
		RespPort: 50001, Established: true,
		ServerChain: []ids.Fingerprint{private.Fingerprint}, Weight: 5,
	})

	// A genuine public-CA connection: step 1 filters it out immediately.
	pub := mkCert("DigiCert Inc", "www.bank.com", "www.bank.com")
	ds.AddCert(pub)
	ds.Conns = append(ds.Conns, zeek.SSLRecord{
		TS: date(2022, 6, 10), UID: "Cpub", SNI: "www.bank.com",
		RespPort: 443, Established: true,
		ServerChain: []ids.Fingerprint{pub.Fingerprint}, Weight: 50,
	})

	// An untrusted issuer contradicting CT on only ONE domain: below the
	// corroboration threshold, must survive.
	oneoff := mkCert("Oneoff Selfsign", "www.bank.com", "www.bank.com")
	ds.AddCert(oneoff)
	ds.Conns = append(ds.Conns, zeek.SSLRecord{
		TS: date(2022, 6, 11), UID: "Cone", SNI: "www.bank.com",
		RespPort: 443, Established: true,
		ServerChain: []ids.Fingerprint{oneoff.Fingerprint}, Weight: 1,
	})

	return ds, &Detector{Bundle: bundle, CT: log, PSL: pslList, MinDomains: 2}
}

func TestDetectorFindsProxy(t *testing.T) {
	ds, det := buildScenario(t)
	res := det.Run(ds)
	if len(res.Issuers) != 1 || res.Issuers[0] != "Sneaky Inspection CA" {
		t.Fatalf("issuers = %v", res.Issuers)
	}
	if len(res.ExcludedCerts) != 3 {
		t.Fatalf("excluded = %d, want 3", len(res.ExcludedCerts))
	}
	if res.CandidateCount < 1 {
		t.Fatal("candidates missing")
	}
	share := res.ExcludedShare(len(ds.Certs))
	if share <= 0 || share >= 1 {
		t.Fatalf("share = %f", share)
	}
}

func TestDetectorSparesLegitimate(t *testing.T) {
	ds, det := buildScenario(t)
	res := det.Run(ds)
	for fp := range res.ExcludedCerts {
		c := ds.Cert(fp)
		if c.IssuerOrg != "Sneaky Inspection CA" {
			t.Fatalf("excluded a non-proxy cert: %+v", c)
		}
	}
}

func TestFilterRemovesInterception(t *testing.T) {
	ds, det := buildScenario(t)
	res := det.Run(ds)
	filtered := Filter(ds, res)
	if len(filtered.Conns) != len(ds.Conns)-3 {
		t.Fatalf("conns = %d, want %d", len(filtered.Conns), len(ds.Conns)-3)
	}
	if len(filtered.Certs) != len(ds.Certs)-3 {
		t.Fatalf("certs = %d", len(filtered.Certs))
	}
	for fp := range res.ExcludedCerts {
		if filtered.Cert(fp) != nil {
			t.Fatal("excluded cert survived filter")
		}
	}
}

func TestDetectorDefaultThreshold(t *testing.T) {
	ds, _ := buildScenario(t)
	det2 := &Detector{
		Bundle: truststore.DefaultBundle(), CT: ct.NewLog(), PSL: psl.Default(),
	}
	// No CT data at all: nothing can be contradicted.
	res := det2.Run(ds)
	if len(res.Issuers) != 0 {
		t.Fatalf("no-CT run found issuers: %v", res.Issuers)
	}
}

func TestExcludedShareZeroTotal(t *testing.T) {
	r := &Result{ExcludedCerts: map[ids.Fingerprint]bool{}}
	if r.ExcludedShare(0) != 0 {
		t.Fatal("zero-total share should be 0")
	}
}
