// Package chaos is the fault-injection layer of the mtlsd load harness
// (cmd/mtlsload): it streams Zeek-style rows into a live log directory
// the way a capture pipeline would, and perturbs the daemon the way
// production does — log rotation, copytruncate, malformed-row storms,
// SIGKILL of the process, and slow-disk (throttled write) episodes.
//
// Everything here is deliberately mechanical; policy (when to inject
// what, and what must still hold afterwards) lives in the harness. The
// one invariant the primitives do own: every append is a whole number
// of rows followed by a flush, so the tailer never observes a torn
// line.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/zeek"
)

// SSLLog and X509Log name the two live logs an Appender manages.
const (
	SSLLog  = "ssl.log"
	X509Log = "x509.log"
)

// Appender streams rows into dir's ssl.log and x509.log: the first
// write to each (and the first after a rotation or truncation) carries
// the Zeek TSV header, later ones append bare rows. Not safe for
// concurrent use.
type Appender struct {
	// Dir is the live log directory (created on first use).
	Dir string
	// Throttle caps append bandwidth in bytes/s when > 0, simulating a
	// slow disk: writes land in small chunks with sleeps in between.
	Throttle int64
	// Extended selects ssl.log's 14-column schema with the ja3/ja4
	// fingerprint columns; set it before the first append when the
	// dataset carries ClientHello fingerprints.
	Extended bool

	// sleep is a test seam for the throttle delay.
	sleep func(time.Duration)

	headered map[string]bool
	rotSeq   int
	bytes    int64
}

// NewAppender returns an Appender over dir.
func NewAppender(dir string) *Appender {
	return &Appender{Dir: dir, sleep: time.Sleep, headered: make(map[string]bool)}
}

// Init creates both logs with headers and no rows, so a daemon started
// before any traffic still finds well-formed files to tail.
func (a *Appender) Init() error {
	if err := a.AppendConns(nil); err != nil {
		return err
	}
	return a.AppendCerts(nil)
}

// BytesWritten returns the total bytes appended so far, malformed
// storms included.
func (a *Appender) BytesWritten() int64 { return a.bytes }

// AppendConns appends rows to ssl.log and flushes.
func (a *Appender) AppendConns(recs []zeek.SSLRecord) error {
	var buf bytes.Buffer
	w := zeek.NewSSLWriter(&buf)
	w.Extended = a.Extended
	if a.headered[SSLLog] {
		w.SkipHeader()
	} else if err := w.WriteHeader(); err != nil {
		return err
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := a.append(SSLLog, buf.Bytes()); err != nil {
		return err
	}
	a.headered[SSLLog] = true
	return nil
}

// AppendCerts appends rows to x509.log and flushes.
func (a *Appender) AppendCerts(recs []zeek.X509Record) error {
	var buf bytes.Buffer
	w := zeek.NewX509Writer(&buf)
	if a.headered[X509Log] {
		w.SkipHeader()
	} else if err := w.WriteHeader(); err != nil {
		return err
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return a.append(X509Log, buf.Bytes())
}

// MalformedStorm appends n syntactically broken rows to the named log —
// the field count is wrong, so a permissive reader quarantines every
// one. Rows carry marker so a harness can find them in the quarantine.
func (a *Appender) MalformedStorm(file, marker string, n int) error {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "%s\tstorm\trow-%d\n", marker, i)
	}
	return a.append(file, buf.Bytes())
}

// append opens the log (creating it if needed), writes data honoring
// the throttle, and closes. Reopening per batch keeps the Appender
// oblivious to rotations happening between appends.
func (a *Appender) append(file string, data []byte) error {
	if err := os.MkdirAll(a.Dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(a.Dir, file)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := a.write(f, data); err != nil {
		return err
	}
	if len(data) > 0 {
		a.headered[file] = true
	}
	return f.Sync()
}

// throttleChunk is the write granularity under Throttle: small enough
// that a 1 MiB/s cap yields visibly paced appends, large enough to stay
// a handful of syscalls per batch.
const throttleChunk = 8 << 10

// write lands data on f, in throttled chunks when Throttle is set.
func (a *Appender) write(f io.Writer, data []byte) error {
	if a.Throttle <= 0 {
		n, err := f.Write(data)
		a.bytes += int64(n)
		return err
	}
	for len(data) > 0 {
		chunk := len(data)
		if chunk > throttleChunk {
			chunk = throttleChunk
		}
		n, err := f.Write(data[:chunk])
		a.bytes += int64(n)
		if err != nil {
			return err
		}
		data = data[chunk:]
		a.sleep(time.Duration(float64(chunk) / float64(a.Throttle) * float64(time.Second)))
	}
	return nil
}

// Rotate renames the named log aside (file.1, file.2, ... per call) the
// way logrotate's default mode does; the next append recreates the live
// file with a fresh header. The caller is responsible for quiescing:
// mtlsd's tailer restarts a rotated file from byte 0, so rows the
// tailer had not consumed before the rename are lost to it — rotate
// only once ingestion lag is zero if losslessness matters.
func (a *Appender) Rotate(file string) error {
	a.rotSeq++
	path := filepath.Join(a.Dir, file)
	if err := os.Rename(path, fmt.Sprintf("%s.%d", path, a.rotSeq)); err != nil {
		return err
	}
	delete(a.headered, file)
	return nil
}

// CopyTruncate rotates the named log the way logrotate's copytruncate
// mode does: copy the content aside, then truncate the live file in
// place (same inode). The tailer detects the shrink (size < offset) and
// restarts from byte 0. The same quiescing caveat as Rotate applies —
// rows not yet consumed exist only in the copy, which is never tailed.
func (a *Appender) CopyTruncate(file string) error {
	a.rotSeq++
	path := filepath.Join(a.Dir, file)
	src, err := os.Open(path)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := os.Create(fmt.Sprintf("%s.%d", path, a.rotSeq))
	if err != nil {
		return err
	}
	if _, err := io.Copy(dst, src); err != nil {
		dst.Close()
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	if err := os.Truncate(path, 0); err != nil {
		return err
	}
	delete(a.headered, file)
	return nil
}
