package chaos

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Proc is a supervised daemon subprocess. The harness starts mtlsd
// through it so the chaos layer can SIGKILL the real process (not a
// goroutine stand-in) and measure its resident set from /proc.
type Proc struct {
	cmd  *exec.Cmd
	log  *os.File
	done chan struct{} // closed once Wait returns
	err  error         // Wait's result, valid after done is closed
}

// StartProc launches bin with args, sending both output streams to
// logPath (appending, so a restarted daemon continues the same log).
func StartProc(bin string, args []string, logPath string) (*Proc, error) {
	log, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = log
	cmd.Stderr = log
	if err := cmd.Start(); err != nil {
		log.Close()
		return nil, err
	}
	p := &Proc{cmd: cmd, log: log, done: make(chan struct{})}
	go func() {
		p.err = cmd.Wait()
		log.Close()
		close(p.done)
	}()
	return p, nil
}

// PID returns the subprocess id.
func (p *Proc) PID() int { return p.cmd.Process.Pid }

// Kill delivers SIGKILL — no drain, no final checkpoint, the crash the
// checkpoint/restore path exists for — and reaps the process.
func (p *Proc) Kill() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	<-p.done
	return nil
}

// Stop delivers SIGTERM (the daemon drains and writes a final
// checkpoint) and waits up to timeout for a clean exit, escalating to
// SIGKILL past the deadline.
func (p *Proc) Stop(timeout time.Duration) error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-p.done:
		return p.err
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		<-p.done
		return fmt.Errorf("process %d ignored SIGTERM for %v, killed", p.PID(), timeout)
	}
}

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the process exits and returns Wait's error.
func (p *Proc) Wait() error {
	<-p.done
	return p.err
}

// RSSBytes reads the process's resident set size from
// /proc/<pid>/status. It returns 0 when the process is gone or the
// platform has no procfs — callers treat 0 as "no sample".
func (p *Proc) RSSBytes() int64 {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", p.PID()))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
