package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Stats is the slice of mtlsd's /api/v1/stats payload the harness
// steers by. Field names match the daemon's JSON exactly; everything
// else in the payload is ignored.
type Stats struct {
	ConnsIngested  uint64
	CertsIngested  uint64
	Retained       int
	Evicted        uint64
	RowsRejected   uint64
	TailErrors     uint64
	Watermark      time.Time
	LastCheckpoint time.Time
	TailLag        map[string]int64
}

// Lag returns the total ingestion lag in bytes across tailed files.
func (s Stats) Lag() int64 {
	var n int64
	for _, v := range s.TailLag {
		n += v
	}
	return n
}

// FetchStats retrieves and decodes base's /api/v1/stats.
func FetchStats(base string) (Stats, error) {
	var s Stats
	resp, err := http.Get(base + "/api/v1/stats")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("GET /api/v1/stats: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err
}

// FetchBody retrieves path from base and returns the raw body.
func FetchBody(base, path string) ([]byte, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return body, nil
}

// pollEvery is the wait-loop cadence: fast enough to keep chaos
// schedules tight, slow enough not to dominate the daemon's request
// counters.
const pollEvery = 25 * time.Millisecond

// WaitHealthy polls base's health endpoint until it answers 200 or the
// timeout lapses. It is how the harness detects a (re)started daemon.
func WaitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz: %s", resp.Status)
		}
		last = err
		time.Sleep(pollEvery)
	}
	return fmt.Errorf("daemon not healthy after %v: %w", timeout, last)
}

// WaitDrained polls until the daemon has ingested at least conns
// connection events and certs certificate events AND its tail lag is
// zero on every file — i.e. everything written so far has been
// consumed. Ingest counters survive restarts — the checkpoint stores
// them alongside the tail offsets they are consistent with — so
// counting rows written since the beginning of the run is correct even
// across a SIGKILL/restore cycle.
func WaitDrained(base string, conns, certs uint64, timeout time.Duration) (Stats, error) {
	deadline := time.Now().Add(timeout)
	var s Stats
	var err error
	for time.Now().Before(deadline) {
		s, err = FetchStats(base)
		if err == nil && s.ConnsIngested >= conns && s.CertsIngested >= certs && s.Lag() == 0 {
			return s, nil
		}
		time.Sleep(pollEvery)
	}
	if err != nil {
		return s, fmt.Errorf("drain wait: %w", err)
	}
	return s, fmt.Errorf("not drained after %v: conns %d/%d certs %d/%d lag %d",
		timeout, s.ConnsIngested, conns, s.CertsIngested, certs, s.Lag())
}

// WaitCheckpointAfter polls until the daemon reports a checkpoint
// written strictly after t. The harness calls it after every rotation
// before it is allowed to SIGKILL: a checkpoint taken post-rotation
// pins the new file's offset, so a restore cannot confuse the fresh
// file with the rotated one.
func WaitCheckpointAfter(base string, t time.Time, timeout time.Duration) (Stats, error) {
	deadline := time.Now().Add(timeout)
	var s Stats
	var err error
	for time.Now().Before(deadline) {
		s, err = FetchStats(base)
		if err == nil && s.LastCheckpoint.After(t) {
			return s, nil
		}
		time.Sleep(pollEvery)
	}
	if err != nil {
		return s, fmt.Errorf("checkpoint wait: %w", err)
	}
	return s, fmt.Errorf("no checkpoint after %s within %v (last %s)",
		t.Format(time.RFC3339Nano), timeout, s.LastCheckpoint.Format(time.RFC3339Nano))
}
