package chaos

import "sort"

// Event is one chaos injection, stamped with seconds since run start.
type Event struct {
	At     float64 // seconds since the run began
	Kind   string  // "rotate", "copytruncate", "malformed", "kill", "restart", "slowdisk-on", ...
	Detail string  `json:",omitempty"`
}

// Sample is one periodic observation of the daemon under load.
type Sample struct {
	At       float64 // seconds since the run began
	Conns    uint64  // connection events ingested
	Certs    uint64  // certificate events ingested
	LagSSL   int64   // ssl.log bytes written but not yet consumed
	LagX509  int64   // x509.log bytes written but not yet consumed
	RSSBytes int64   `json:",omitempty"` // daemon resident set (0 = unavailable)
}

// Recorder accumulates the run's timeline for the benchmark artifact.
// Not safe for concurrent use; the harness samples from one goroutine
// and serializes events through it.
type Recorder struct {
	Events  []Event
	Samples []Sample
}

// Record appends a chaos event.
func (r *Recorder) Record(at float64, kind, detail string) {
	r.Events = append(r.Events, Event{At: at, Kind: kind, Detail: detail})
}

// Observe appends a sample.
func (r *Recorder) Observe(s Sample) { r.Samples = append(r.Samples, s) }

// MaxLag returns the largest total lag (ssl + x509) across samples.
func (r *Recorder) MaxLag() int64 {
	var max int64
	for _, s := range r.Samples {
		if lag := s.LagSSL + s.LagX509; lag > max {
			max = lag
		}
	}
	return max
}

// LagQuantile returns the q-quantile (0..1) of total lag across
// samples, 0 when no samples exist.
func (r *Recorder) LagQuantile(q float64) int64 {
	if len(r.Samples) == 0 {
		return 0
	}
	lags := make([]int64, len(r.Samples))
	for i, s := range r.Samples {
		lags[i] = s.LagSSL + s.LagX509
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	idx := int(q * float64(len(lags)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lags) {
		idx = len(lags) - 1
	}
	return lags[idx]
}

// MaxRSS returns the largest observed resident set, 0 if never sampled.
func (r *Recorder) MaxRSS() int64 {
	var max int64
	for _, s := range r.Samples {
		if s.RSSBytes > max {
			max = s.RSSBytes
		}
	}
	return max
}
