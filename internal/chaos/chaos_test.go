package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/zeek"
)

func conn(uid string, ts time.Time) zeek.SSLRecord {
	return zeek.SSLRecord{
		TS: ts, UID: ids.UID(uid), OrigIP: "10.0.0.1", OrigPort: 1234,
		RespIP: "192.0.2.1", RespPort: 443, Version: "TLSv12", SNI: "example.com",
		Established: true, ServerChain: []ids.Fingerprint{"aa"}, Weight: 1,
	}
}

func conns(n int, prefix string) []zeek.SSLRecord {
	base := time.Date(2024, 5, 4, 12, 0, 0, 0, time.UTC)
	out := make([]zeek.SSLRecord, n)
	for i := range out {
		out[i] = conn(prefix+string(rune('a'+i%26))+"-"+string(rune('0'+i/26)), base.Add(time.Duration(i)*time.Second))
	}
	return out
}

// readSSL reads every row of an ssl log file.
func readSSL(t *testing.T, path string) []zeek.SSLRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := zeek.ReadSSL(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppenderInitAndRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := NewAppender(dir)
	if err := a.Init(); err != nil {
		t.Fatal(err)
	}
	// Both logs exist header-only: readable, zero rows.
	for _, file := range []string{SSLLog, X509Log} {
		data, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("#separator")) {
			t.Fatalf("%s does not start with a Zeek header: %q", file, data[:min(len(data), 40)])
		}
	}
	if recs := readSSL(t, filepath.Join(dir, SSLLog)); len(recs) != 0 {
		t.Fatalf("fresh ssl.log: %d rows, want 0", len(recs))
	}

	want := conns(5, "rt")
	if err := a.AppendConns(want[:2]); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendConns(want[2:]); err != nil {
		t.Fatal(err)
	}
	got := readSSL(t, filepath.Join(dir, SSLLog))
	if len(got) != len(want) {
		t.Fatalf("read back %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].UID != want[i].UID {
			t.Fatalf("row %d: UID %q, want %q", i, got[i].UID, want[i].UID)
		}
	}
	if a.BytesWritten() == 0 {
		t.Fatal("BytesWritten = 0 after appends")
	}
	// A second header never appears mid-file.
	data, _ := os.ReadFile(filepath.Join(dir, SSLLog))
	if n := bytes.Count(data, []byte("#separator")); n != 1 {
		t.Fatalf("ssl.log contains %d headers, want 1", n)
	}
}

// TestCoordinatedRotateLossless is the rotation protocol the harness
// relies on: drain (poll to EOF) before rotating, and no row is lost
// even though the tailer restarts the fresh file from byte 0.
func TestCoordinatedRotateLossless(t *testing.T) {
	dir := t.TempDir()
	a := NewAppender(dir)
	reg := metrics.New()
	tl := zeek.NewSSLTail(filepath.Join(dir, SSLLog))
	tl.Instrument(reg)

	all := conns(12, "ro")
	var got []zeek.SSLRecord
	poll := func() {
		t.Helper()
		recs, err := tl.Poll()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
	}

	if err := a.AppendConns(all[:7]); err != nil {
		t.Fatal(err)
	}
	poll() // quiesce: tailer at EOF before the rename
	if err := a.Rotate(SSLLog); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendConns(all[7:]); err != nil {
		t.Fatal(err)
	}
	poll()

	if len(got) != len(all) {
		t.Fatalf("tailer saw %d rows across rotation, want %d", len(got), len(all))
	}
	for i := range got {
		if got[i].UID != all[i].UID {
			t.Fatalf("row %d: UID %q, want %q", i, got[i].UID, all[i].UID)
		}
	}
	if n := reg.Counter("tail_rotations_total", "log rotations detected", "file", "ssl").Value(); n != 1 {
		t.Fatalf("tail_rotations_total = %d, want 1", n)
	}
	// The rotated copy retains the pre-rotation rows.
	old := readSSL(t, filepath.Join(dir, SSLLog+".1"))
	if len(old) != 7 {
		t.Fatalf("rotated file has %d rows, want 7", len(old))
	}
}

func TestCopyTruncateLossless(t *testing.T) {
	dir := t.TempDir()
	a := NewAppender(dir)
	tl := zeek.NewSSLTail(filepath.Join(dir, SSLLog))

	all := conns(10, "ct")
	if err := a.AppendConns(all[:6]); err != nil {
		t.Fatal(err)
	}
	first, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CopyTruncate(SSLLog); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendConns(all[6:]); err != nil {
		t.Fatal(err)
	}
	rest, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	got := append(first, rest...)
	if len(got) != len(all) {
		t.Fatalf("tailer saw %d rows across copytruncate, want %d", len(got), len(all))
	}
	// The copy holds exactly the pre-truncation content.
	old := readSSL(t, filepath.Join(dir, SSLLog+".1"))
	if len(old) != 6 {
		t.Fatalf("copy has %d rows, want 6", len(old))
	}
	// The live file was recreated with a fresh header on the next append.
	data, _ := os.ReadFile(filepath.Join(dir, SSLLog))
	if !bytes.HasPrefix(data, []byte("#separator")) {
		t.Fatal("live file lost its header after copytruncate")
	}
}

func TestMalformedStormQuarantined(t *testing.T) {
	dir := t.TempDir()
	a := NewAppender(dir)
	var qbuf bytes.Buffer
	q := zeek.NewQuarantine(&qbuf)
	tl := zeek.NewSSLTail(filepath.Join(dir, SSLLog))
	tl.SetOptions(zeek.Options{Quarantine: q})

	all := conns(8, "ms")
	if err := a.AppendConns(all[:4]); err != nil {
		t.Fatal(err)
	}
	const marker = "CHAOS-STORM-7f3a"
	if err := a.MalformedStorm(SSLLog, marker, 25); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendConns(all[4:]); err != nil {
		t.Fatal(err)
	}
	got, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("healthy rows around the storm: got %d, want %d", len(got), len(all))
	}
	if q.Count() != 25 {
		t.Fatalf("quarantined %d rows, want 25", q.Count())
	}
	if !strings.Contains(qbuf.String(), marker) {
		t.Fatal("quarantine stream does not carry the storm marker")
	}
}

func TestThrottlePacesWrites(t *testing.T) {
	dir := t.TempDir()
	a := NewAppender(dir)
	a.Throttle = 64 << 10 // 64 KiB/s
	var slept time.Duration
	a.sleep = func(d time.Duration) { slept += d }

	recs := conns(200, "th")
	if err := a.AppendConns(recs); err != nil {
		t.Fatal(err)
	}
	bytes := a.BytesWritten()
	if bytes <= throttleChunk {
		t.Fatalf("test needs multiple chunks, wrote only %d bytes", bytes)
	}
	want := time.Duration(float64(bytes) / float64(a.Throttle) * float64(time.Second))
	if slept < want*9/10 || slept > want*11/10 {
		t.Fatalf("throttle slept %v for %d bytes at %d B/s, want ~%v", slept, bytes, a.Throttle, want)
	}
	// Rows still land whole.
	got := readSSL(t, filepath.Join(dir, SSLLog))
	if len(got) != len(recs) {
		t.Fatalf("read back %d rows, want %d", len(got), len(recs))
	}
}

func TestProcLifecycle(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProc("/bin/sh", []string{"-c", "sleep 30"}, filepath.Join(dir, "proc.log"))
	if err != nil {
		t.Skipf("cannot start /bin/sh: %v", err)
	}
	if p.PID() <= 0 {
		t.Fatalf("PID = %d", p.PID())
	}
	if p.Exited() {
		t.Fatal("process reported exited immediately")
	}
	if rss := p.RSSBytes(); rss <= 0 {
		t.Logf("RSSBytes = %d (no procfs?)", rss)
	}
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() {
		t.Fatal("process not exited after Kill")
	}
	if rss := p.RSSBytes(); rss != 0 {
		t.Fatalf("RSSBytes = %d after kill, want 0", rss)
	}

	// Stop: SIGTERM terminates a default sh promptly.
	p2, err := StartProc("/bin/sh", []string{"-c", "sleep 30"}, filepath.Join(dir, "proc2.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Stop(5 * time.Second); err != nil {
		// sh exits nonzero on SIGTERM; what matters is that it exited.
		if !p2.Exited() {
			t.Fatalf("Stop: %v and process still running", err)
		}
	}
}

func TestRecorderStats(t *testing.T) {
	var r Recorder
	if r.MaxLag() != 0 || r.LagQuantile(0.95) != 0 || r.MaxRSS() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
	for i, lag := range []int64{5, 1, 9, 3, 7} {
		r.Observe(Sample{At: float64(i), LagSSL: lag, LagX509: lag, RSSBytes: int64(100 + i)})
	}
	if got := r.MaxLag(); got != 18 {
		t.Fatalf("MaxLag = %d, want 18", got)
	}
	if got := r.LagQuantile(0); got != 2 {
		t.Fatalf("LagQuantile(0) = %d, want 2", got)
	}
	if got := r.LagQuantile(1); got != 18 {
		t.Fatalf("LagQuantile(1) = %d, want 18", got)
	}
	if got := r.MaxRSS(); got != 104 {
		t.Fatalf("MaxRSS = %d, want 104", got)
	}
	r.Record(1.5, "rotate", SSLLog)
	if len(r.Events) != 1 || r.Events[0].Kind != "rotate" {
		t.Fatalf("Events = %+v", r.Events)
	}
}
