package tlswire

// fingerprint.go computes ClientHello fingerprints — JA3 (the md5 of
// version, ciphers, extensions, curves, point formats) and a JA4-style
// string (transport/version/SNI/counts prefix plus truncated sha256 of
// the sorted cipher and extension sets) — and carries the preset hello
// profiles the scenario engine assigns to client families. Both the
// workload generator's bulk path and the zeek analyzer's wire path call
// the same two functions, so a cohort's stamped fingerprints and the
// fingerprints recovered from its synthesized byte streams agree.

import (
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// HelloProfile is one client family's ClientHello shape: the orderings
// that make its fingerprint distinctive.
type HelloProfile struct {
	Name         string
	CipherSuites []uint16
	// ExtOrder is the extension emission order (extension types).
	ExtOrder []uint16
	Curves   []uint16 // supported_groups
	Points   []uint8  // ec_point_formats
	SigAlgs  []uint16
	ALPN     []string
	// TLS13 advertises supported_versions 1.3+1.2.
	TLS13 bool
}

// Hello builds the ClientHello this profile sends for the given SNI.
// Random is left zero — fingerprints do not cover it; transcript
// synthesis fills it per connection.
func (p *HelloProfile) Hello(sni string) *ClientHello {
	ch := &ClientHello{
		LegacyVersion:   VersionTLS12,
		CipherSuites:    p.CipherSuites,
		SNI:             sni,
		ALPN:            p.ALPN,
		SupportedGroups: p.Curves,
		ECPointFormats:  p.Points,
		SigAlgs:         p.SigAlgs,
		ExtOrder:        p.ExtOrder,
	}
	if p.TLS13 {
		ch.SupportedVersions = []uint16{VersionTLS13, VersionTLS12}
	}
	return ch
}

// JA3Hello returns the profile's JA3 for a connection with the given SNI.
func (p *HelloProfile) JA3Hello(sni string) string { return JA3(p.Hello(sni)) }

// JA4Hello returns the profile's JA4-style fingerprint for the given SNI.
func (p *HelloProfile) JA4Hello(sni string) string { return JA4(p.Hello(sni)) }

// Cipher suite and group values used by the presets.
const (
	csAES128GCM13  uint16 = 0x1301 // TLS_AES_128_GCM_SHA256
	csAES256GCM13  uint16 = 0x1302 // TLS_AES_256_GCM_SHA384
	csCHACHA13     uint16 = 0x1303 // TLS_CHACHA20_POLY1305_SHA256
	csECDHE_RSA128 uint16 = 0xc02f // ECDHE-RSA-AES128-GCM-SHA256
	csECDHE_EC128  uint16 = 0xc02b // ECDHE-ECDSA-AES128-GCM-SHA256
	csECDHE_RSA256 uint16 = 0xc030 // ECDHE-RSA-AES256-GCM-SHA384
	csECDHE_EC256  uint16 = 0xc02c // ECDHE-ECDSA-AES256-GCM-SHA384
	csCHACHA_RSA   uint16 = 0xcca8
	csCHACHA_EC    uint16 = 0xcca9
	csRSA128GCM    uint16 = 0x009c
	csRSA256GCM    uint16 = 0x009d
	csRSA128CBC    uint16 = 0x002f
	csRSA256CBC    uint16 = 0x0035

	curveX25519 uint16 = 0x001d
	curveP256   uint16 = 0x0017
	curveP384   uint16 = 0x0018
	curveP521   uint16 = 0x0019
)

// presets is the ClientHello family table. Orderings differ per family
// on purpose: cipher preference, extension order, and curve order are
// exactly what JA3 discriminates.
var presets = []*HelloProfile{
	{
		Name: "chrome",
		CipherSuites: []uint16{csAES128GCM13, csAES256GCM13, csCHACHA13,
			csECDHE_EC128, csECDHE_RSA128, csECDHE_EC256, csECDHE_RSA256, csCHACHA_EC, csCHACHA_RSA},
		ExtOrder: []uint16{extServerName, extSupportedGroups, extECPointFormats,
			extSigAlgs, extALPN, extSupportedVersions},
		Curves:  []uint16{curveX25519, curveP256, curveP384},
		Points:  []uint8{0},
		SigAlgs: []uint16{0x0403, 0x0804, 0x0401, 0x0503, 0x0805, 0x0501},
		ALPN:    []string{"h2", "http/1.1"},
		TLS13:   true,
	},
	{
		Name: "firefox",
		CipherSuites: []uint16{csAES128GCM13, csCHACHA13, csAES256GCM13,
			csECDHE_EC128, csECDHE_RSA128, csCHACHA_EC, csCHACHA_RSA, csECDHE_EC256, csECDHE_RSA256},
		ExtOrder: []uint16{extServerName, extALPN, extSupportedGroups,
			extECPointFormats, extSigAlgs, extSupportedVersions},
		Curves:  []uint16{curveX25519, curveP256, curveP384, curveP521},
		Points:  []uint8{0},
		SigAlgs: []uint16{0x0403, 0x0503, 0x0603, 0x0804, 0x0805, 0x0806, 0x0401, 0x0501, 0x0601},
		ALPN:    []string{"h2", "http/1.1"},
		TLS13:   true,
	},
	{
		Name: "safari",
		CipherSuites: []uint16{csAES128GCM13, csAES256GCM13, csCHACHA13,
			csECDHE_EC256, csECDHE_EC128, csCHACHA_EC, csECDHE_RSA256, csECDHE_RSA128, csCHACHA_RSA},
		ExtOrder: []uint16{extServerName, extECPointFormats, extSupportedGroups,
			extALPN, extSigAlgs, extSupportedVersions},
		Curves:  []uint16{curveX25519, curveP256, curveP384, curveP521},
		Points:  []uint8{0},
		SigAlgs: []uint16{0x0403, 0x0804, 0x0401, 0x0503, 0x0805, 0x0501, 0x0601},
		ALPN:    []string{"h2", "http/1.1"},
		TLS13:   true,
	},
	{
		Name: "edge",
		CipherSuites: []uint16{csAES128GCM13, csAES256GCM13, csCHACHA13,
			csECDHE_EC128, csECDHE_RSA128, csECDHE_EC256, csECDHE_RSA256, csRSA128GCM, csRSA256GCM},
		ExtOrder: []uint16{extServerName, extSupportedGroups, extECPointFormats,
			extALPN, extSigAlgs, extSupportedVersions},
		Curves:  []uint16{curveX25519, curveP256, curveP384},
		Points:  []uint8{0},
		SigAlgs: []uint16{0x0403, 0x0804, 0x0401, 0x0503, 0x0805, 0x0501},
		ALPN:    []string{"h2", "http/1.1"},
		TLS13:   true,
	},
	{
		Name: "ios-app",
		CipherSuites: []uint16{csAES128GCM13, csAES256GCM13,
			csECDHE_EC256, csECDHE_EC128, csECDHE_RSA256, csECDHE_RSA128},
		ExtOrder: []uint16{extServerName, extECPointFormats, extSupportedGroups,
			extSigAlgs, extALPN, extSupportedVersions},
		Curves:  []uint16{curveX25519, curveP256, curveP384, curveP521},
		Points:  []uint8{0},
		SigAlgs: []uint16{0x0403, 0x0804, 0x0401},
		ALPN:    []string{"h2"},
		TLS13:   true,
	},
	{
		Name: "android-okhttp",
		CipherSuites: []uint16{csAES128GCM13, csAES256GCM13, csCHACHA13,
			csECDHE_EC128, csECDHE_RSA128, csCHACHA_EC, csCHACHA_RSA},
		ExtOrder: []uint16{extServerName, extSupportedGroups, extSigAlgs,
			extALPN, extSupportedVersions},
		Curves:  []uint16{curveX25519, curveP256},
		SigAlgs: []uint16{0x0403, 0x0401, 0x0503, 0x0501},
		ALPN:    []string{"h2", "http/1.1"},
		TLS13:   true,
	},
	{
		// Embedded TLS stacks: short static cipher list, no ALPN, CBC
		// fallbacks still advertised — the IoT fleet look.
		Name:         "iot-embedded",
		CipherSuites: []uint16{csECDHE_RSA128, csRSA128GCM, csRSA128CBC, csRSA256CBC},
		ExtOrder:     []uint16{extServerName, extSupportedGroups, extECPointFormats},
		Curves:       []uint16{curveP256, curveP384},
		Points:       []uint8{0},
	},
	{
		// Interception proxies re-originate with their own stack: a wide
		// flat cipher list and minimal extensions, unlike any browser.
		Name: "middlebox-proxy",
		CipherSuites: []uint16{csECDHE_RSA256, csECDHE_RSA128, csECDHE_EC256, csECDHE_EC128,
			csRSA256GCM, csRSA128GCM, csRSA256CBC, csRSA128CBC},
		ExtOrder: []uint16{extServerName, extSupportedGroups, extECPointFormats, extSigAlgs},
		Curves:   []uint16{curveP256, curveX25519, curveP384},
		Points:   []uint8{0},
		SigAlgs:  []uint16{0x0401, 0x0403, 0x0501, 0x0503},
	},
	{
		// Service-to-service Go clients (crypto/tls defaults, h2).
		Name: "go-client",
		CipherSuites: []uint16{csAES128GCM13, csCHACHA13, csAES256GCM13,
			csECDHE_EC128, csECDHE_RSA128, csECDHE_EC256, csECDHE_RSA256, csCHACHA_EC, csCHACHA_RSA},
		ExtOrder: []uint16{extServerName, extECPointFormats, extSupportedGroups,
			extSigAlgs, extALPN, extSupportedVersions},
		Curves:  []uint16{curveX25519, curveP256, curveP384, curveP521},
		Points:  []uint8{0},
		SigAlgs: []uint16{0x0804, 0x0403, 0x0807, 0x0805, 0x0806, 0x0401, 0x0501, 0x0601},
		ALPN:    []string{"h2", "http/1.1"},
		TLS13:   true,
	},
}

// Preset returns the named hello profile (nil when unknown).
func Preset(name string) *HelloProfile {
	for _, p := range presets {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// PresetNames lists the available hello profiles.
func PresetNames() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Name
	}
	return out
}

// JA3 computes the classic JA3 fingerprint: md5 over
// "version,ciphers,extensions,curves,pointformats" with dash-joined
// decimal lists in wire order.
func JA3(ch *ClientHello) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d,", ch.LegacyVersion)
	writeU16List(&b, ch.CipherSuites)
	b.WriteByte(',')
	writeU16List(&b, ja3Extensions(ch))
	b.WriteByte(',')
	writeU16List(&b, ch.SupportedGroups)
	b.WriteByte(',')
	for i, p := range ch.ECPointFormats {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	sum := md5.Sum([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// ja3Extensions reconstructs the extension type list in emission order.
func ja3Extensions(ch *ClientHello) []uint16 {
	if ch.ExtOrder != nil {
		return ch.ExtOrder
	}
	var out []uint16
	for _, typ := range defaultExtOrder {
		if ch.extBody(typ) != nil {
			out = append(out, typ)
		}
	}
	return out
}

// JA4 computes a JA4-style fingerprint:
//
//	t<ver><d|i><nn ciphers><nn extensions><alpn>_<cipher hash>_<ext hash>
//
// where ver is the highest advertised version ("13"/"12"), d/i marks SNI
// presence (domain vs IP-only), alpn is the first and last byte of the
// first ALPN value ("00" when absent), and the hashes are the first 12
// hex characters of sha256 over the sorted cipher list and the sorted
// extension list plus signature algorithms.
func JA4(ch *ClientHello) string {
	ver := "12"
	for _, v := range ch.SupportedVersions {
		if v >= VersionTLS13 {
			ver = "13"
		}
	}
	sni := "i"
	if ch.SNI != "" {
		sni = "d"
	}
	alpn := "00"
	if len(ch.ALPN) > 0 && len(ch.ALPN[0]) > 0 {
		first := ch.ALPN[0]
		alpn = string(first[0]) + string(first[len(first)-1])
	}
	exts := ja3Extensions(ch)
	var b strings.Builder
	fmt.Fprintf(&b, "t%s%s%02d%02d%s_%s_%s", ver, sni,
		min(len(ch.CipherSuites), 99), min(len(exts), 99), alpn,
		sortedHash(ch.CipherSuites, nil), sortedHash(exts, ch.SigAlgs))
	return b.String()
}

// sortedHash hashes a sorted u16 list (plus a trailing unsorted suffix,
// JA4's signature-algorithm tail) to 12 hex chars.
func sortedHash(list, suffix []uint16) string {
	s := append([]uint16(nil), list...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var b strings.Builder
	writeU16List(&b, s)
	if len(suffix) > 0 {
		b.WriteByte('_')
		writeU16List(&b, suffix)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:6])
}

func writeU16List(b *strings.Builder, xs []uint16) {
	for i, x := range xs {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(b, "%d", x)
	}
}
