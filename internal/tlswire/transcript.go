package tlswire

import (
	"bytes"

	"repro/internal/ids"
)

// TranscriptSpec describes a handshake to synthesize. The simulator uses
// it to produce the byte streams a border tap would see for one
// connection.
type TranscriptSpec struct {
	// Version is the negotiated protocol version (VersionTLS12 or
	// VersionTLS13; 1.0/1.1 behave like 1.2 for our purposes).
	Version uint16
	// SNI is the server name in the ClientHello ("" = absent).
	SNI string
	// ServerChain is the server's certificate chain, leaf first (DER).
	ServerChain [][]byte
	// ClientChain is the client's chain; nil means the server did not
	// request (or the client did not supply) a certificate.
	ClientChain [][]byte
	// RequestClientCert forces a CertificateRequest even when the client
	// will answer with an empty Certificate message.
	RequestClientCert bool
	// Established marks whether the handshake completes; failed handshakes
	// stop after the server flight.
	Established bool
	// Profile shapes the ClientHello (cipher/extension/curve orderings)
	// for fingerprint diversity. nil keeps the fixed legacy hello, byte
	// for byte.
	Profile *HelloProfile
}

// Transcript is the pair of directional byte streams for one connection.
type Transcript struct {
	ClientToServer []byte
	ServerToClient []byte
}

// Synthesize renders the handshake byte streams. TLS 1.2 exposes both
// certificate chains on the wire; TLS 1.3 hides everything after
// ServerHello behind encryption, which is exactly the visibility boundary
// the paper reports (§3.3: 40.86% of connections are TLS 1.3 and opaque).
func Synthesize(spec TranscriptSpec, rng *ids.RNG) Transcript {
	var c2s, s2c bytes.Buffer

	recVer := VersionTLS12
	if spec.Version <= VersionTLS11 {
		recVer = spec.Version
	}

	var ch *ClientHello
	if spec.Profile != nil {
		ch = spec.Profile.Hello(spec.SNI)
		ch.LegacyVersion = min16(spec.Version, VersionTLS12)
	} else {
		ch = &ClientHello{
			LegacyVersion: min16(spec.Version, VersionTLS12),
			CipherSuites:  []uint16{0x1301, 0xc02f, 0xc030, 0x009c},
			SNI:           spec.SNI,
		}
	}
	fillRandom(&ch.Random, rng)
	if spec.Version == VersionTLS13 && len(ch.SupportedVersions) == 0 {
		ch.SupportedVersions = []uint16{VersionTLS13, VersionTLS12}
	}
	must(WriteRecord(&c2s, RecordHandshake, VersionTLS10, ch.Marshal()))

	sh := &ServerHello{
		LegacyVersion: min16(spec.Version, VersionTLS12),
		CipherSuite:   0xc02f,
	}
	fillRandom(&sh.Random, rng)
	if spec.Version == VersionTLS13 {
		sh.SelectedVersion = VersionTLS13
		sh.CipherSuite = 0x1301
	}
	must(WriteRecord(&s2c, RecordHandshake, recVer, sh.Marshal()))

	if spec.Version == VersionTLS13 {
		// Everything else is encrypted: emit ChangeCipherSpec (middlebox
		// compatibility) then opaque application-data records standing in
		// for EncryptedExtensions/Certificate/Finished.
		must(WriteRecord(&s2c, RecordChangeCipherSpec, recVer, []byte{1}))
		must(WriteRecord(&s2c, RecordApplicationData, recVer, opaque(rng, 1200)))
		must(WriteRecord(&c2s, RecordChangeCipherSpec, recVer, []byte{1}))
		must(WriteRecord(&c2s, RecordApplicationData, recVer, opaque(rng, 120)))
		return Transcript{ClientToServer: c2s.Bytes(), ServerToClient: s2c.Bytes()}
	}

	// TLS 1.2 server flight: Certificate [CertificateRequest] HelloDone.
	var flight []byte
	flight = append(flight, (&CertificateMsg{Chain: spec.ServerChain}).Marshal()...)
	if spec.RequestClientCert || len(spec.ClientChain) > 0 {
		flight = append(flight, (&CertificateRequestMsg{}).Marshal()...)
	}
	flight = append(flight, wrapHandshake(TypeServerHelloDone, nil)...)
	must(WriteRecord(&s2c, RecordHandshake, recVer, flight))

	if !spec.Established {
		// Client abandons: alert and silence.
		must(WriteRecord(&c2s, RecordAlert, recVer, []byte{2, 40}))
		return Transcript{ClientToServer: c2s.Bytes(), ServerToClient: s2c.Bytes()}
	}

	// Client flight: [Certificate] ClientKeyExchange [CertificateVerify]
	// then CCS + encrypted Finished.
	var cflight []byte
	if spec.RequestClientCert || len(spec.ClientChain) > 0 {
		cflight = append(cflight, (&CertificateMsg{Chain: spec.ClientChain}).Marshal()...)
	}
	cflight = append(cflight, wrapHandshake(TypeClientKeyExchange, opaque(rng, 66))...)
	if len(spec.ClientChain) > 0 {
		cflight = append(cflight, wrapHandshake(TypeCertificateVerify, opaque(rng, 72))...)
	}
	must(WriteRecord(&c2s, RecordHandshake, recVer, cflight))
	must(WriteRecord(&c2s, RecordChangeCipherSpec, recVer, []byte{1}))
	must(WriteRecord(&c2s, RecordApplicationData, recVer, opaque(rng, 40)))

	must(WriteRecord(&s2c, RecordChangeCipherSpec, recVer, []byte{1}))
	must(WriteRecord(&s2c, RecordApplicationData, recVer, opaque(rng, 40)))
	return Transcript{ClientToServer: c2s.Bytes(), ServerToClient: s2c.Bytes()}
}

func fillRandom(dst *[32]byte, rng *ids.RNG) {
	for i := 0; i < 32; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			dst[i+j] = byte(v >> (8 * j))
		}
	}
}

func opaque(rng *ids.RNG, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint64())
	}
	return b
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

// must panics on impossible buffer-write failures (bytes.Buffer cannot
// fail); it keeps the synthesis code honest about unchecked errors.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
