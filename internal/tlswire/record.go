// Package tlswire implements the subset of the TLS wire protocol a passive
// monitor needs: the record layer, the handshake messages that carry
// identities (ClientHello with SNI, ServerHello with version negotiation,
// Certificate chains, CertificateRequest), and transcript synthesis used by
// the traffic simulator.
//
// The codec is deliberately bidirectional — everything it emits it can
// parse back — because the Zeek-like analyzer (internal/zeek) consumes the
// same byte streams the simulator produces, and the live-capture example
// consumes streams produced by crypto/tls itself.
//
// Parsing follows the gopacket decoding idiom: messages decode from bytes
// into caller-visible structs with explicit errors, never panics, and
// malformed input is reported rather than guessed at.
package tlswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// RecordType is the TLS record content type.
type RecordType uint8

// Record content types (RFC 5246 §6.2.1, RFC 8446 §5.1).
const (
	RecordChangeCipherSpec RecordType = 20
	RecordAlert            RecordType = 21
	RecordHandshake        RecordType = 22
	RecordApplicationData  RecordType = 23
)

// Protocol versions on the wire.
const (
	VersionTLS10 uint16 = 0x0301
	VersionTLS11 uint16 = 0x0302
	VersionTLS12 uint16 = 0x0303
	VersionTLS13 uint16 = 0x0304
)

// VersionString renders a wire version for logs ("TLSv12").
func VersionString(v uint16) string {
	switch v {
	case VersionTLS10:
		return "TLSv10"
	case VersionTLS11:
		return "TLSv11"
	case VersionTLS12:
		return "TLSv12"
	case VersionTLS13:
		return "TLSv13"
	default:
		return fmt.Sprintf("TLS-0x%04x", v)
	}
}

// maxRecordLen bounds record payloads (RFC 5246 allows 2^14 + expansion;
// we accept a little slack for encrypted records).
const maxRecordLen = 1<<14 + 2048

// Record is one TLS record.
type Record struct {
	Type    RecordType
	Version uint16
	Payload []byte
}

// ErrNotTLS marks streams that do not begin with a plausible TLS record.
var ErrNotTLS = errors.New("tlswire: not a TLS stream")

// WriteRecord frames payload as a single record. Payloads larger than the
// maximum record size are split across records, as real stacks do.
func WriteRecord(w io.Writer, typ RecordType, version uint16, payload []byte) error {
	const chunk = 1 << 14
	for first := true; first || len(payload) > 0; first = false {
		n := len(payload)
		if n > chunk {
			n = chunk
		}
		var hdr [5]byte
		hdr[0] = byte(typ)
		binary.BigEndian.PutUint16(hdr[1:3], version)
		binary.BigEndian.PutUint16(hdr[3:5], uint16(n))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload[:n]); err != nil {
			return err
		}
		payload = payload[n:]
		if n == 0 {
			break
		}
	}
	return nil
}

// RecordReader reads records from a byte stream.
type RecordReader struct {
	r   io.Reader
	hdr [5]byte
}

// NewRecordReader wraps r.
func NewRecordReader(r io.Reader) *RecordReader { return &RecordReader{r: r} }

// Next reads one record. It returns io.EOF at a clean record boundary and
// ErrNotTLS when the header is implausible.
func (rr *RecordReader) Next() (Record, error) {
	if _, err := io.ReadFull(rr.r, rr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	rec := Record{
		Type:    RecordType(rr.hdr[0]),
		Version: binary.BigEndian.Uint16(rr.hdr[1:3]),
	}
	n := int(binary.BigEndian.Uint16(rr.hdr[3:5]))
	if !plausibleRecordHeader(rr.hdr) {
		return Record{}, ErrNotTLS
	}
	rec.Payload = make([]byte, n)
	if _, err := io.ReadFull(rr.r, rec.Payload); err != nil {
		return Record{}, fmt.Errorf("tlswire: truncated record: %w", err)
	}
	return rec, nil
}

func plausibleRecordHeader(hdr [5]byte) bool {
	t := RecordType(hdr[0])
	if t < RecordChangeCipherSpec || t > RecordApplicationData {
		return false
	}
	if hdr[1] != 0x03 || hdr[2] > 0x04 {
		return false
	}
	return int(binary.BigEndian.Uint16(hdr[3:5])) <= maxRecordLen
}

// SniffTLS implements the dynamic-protocol-detection primitive: it reports
// whether prefix (the first bytes a client sent) plausibly begins a TLS
// session, i.e. a handshake record carrying a ClientHello. Zeek's DPD lets
// the paper see TLS on ports like 20017 and 50000–51000 (§4.1); this is
// the equivalent check.
func SniffTLS(prefix []byte) bool {
	if len(prefix) < 6 {
		return false
	}
	var hdr [5]byte
	copy(hdr[:], prefix)
	if !plausibleRecordHeader(hdr) {
		return false
	}
	return RecordType(hdr[0]) == RecordHandshake && HandshakeType(prefix[5]) == TypeClientHello
}

// HandshakeReader reassembles handshake messages that may span records.
type HandshakeReader struct {
	rr          *RecordReader
	buf         []byte
	lastVersion uint16
	// sawCCS notes a ChangeCipherSpec: in TLS 1.2 everything after it is
	// encrypted and the monitor must stop interpreting handshake bytes.
	sawCCS bool
}

// NewHandshakeReader wraps a record stream.
func NewHandshakeReader(r io.Reader) *HandshakeReader {
	return &HandshakeReader{rr: NewRecordReader(r)}
}

// Handshake is one reassembled handshake message.
type Handshake struct {
	Type RecordType // record type that carried it (always handshake)
	Msg  HandshakeType
	Body []byte // message body, header stripped
	// Version is the record-layer version of the first fragment.
	Version uint16
}

// ErrEncrypted is returned once the stream transitions to encrypted data;
// a passive monitor can read nothing further without keys.
var ErrEncrypted = errors.New("tlswire: remainder of stream is encrypted")

// Next returns the next handshake message, io.EOF at stream end, or
// ErrEncrypted after ChangeCipherSpec / when an encrypted handshake record
// (TLS 1.3) is encountered.
func (hr *HandshakeReader) Next() (Handshake, error) {
	for {
		if h, ok, err := hr.popMessage(); err != nil {
			return Handshake{}, err
		} else if ok {
			return h, nil
		}
		rec, err := hr.rr.Next()
		if err != nil {
			if err == io.EOF && len(hr.buf) > 0 {
				return Handshake{}, io.ErrUnexpectedEOF
			}
			return Handshake{}, err
		}
		switch rec.Type {
		case RecordHandshake:
			if hr.sawCCS {
				return Handshake{}, ErrEncrypted
			}
			hr.buf = append(hr.buf, rec.Payload...)
			hr.lastVersion = rec.Version
		case RecordChangeCipherSpec:
			hr.sawCCS = true
		case RecordApplicationData:
			return Handshake{}, ErrEncrypted
		case RecordAlert:
			// Ignore plaintext alerts; encrypted ones arrive as appdata.
		}
	}
}

// popMessage extracts a complete message from the reassembly buffer.
func (hr *HandshakeReader) popMessage() (Handshake, bool, error) {
	if len(hr.buf) < 4 {
		return Handshake{}, false, nil
	}
	n := int(hr.buf[1])<<16 | int(hr.buf[2])<<8 | int(hr.buf[3])
	if n > 1<<20 {
		return Handshake{}, false, fmt.Errorf("tlswire: handshake message too large: %d", n)
	}
	if len(hr.buf) < 4+n {
		return Handshake{}, false, nil
	}
	h := Handshake{
		Type:    RecordHandshake,
		Msg:     HandshakeType(hr.buf[0]),
		Body:    append([]byte(nil), hr.buf[4:4+n]...),
		Version: hr.lastVersion,
	}
	hr.buf = hr.buf[4+n:]
	return h, true, nil
}
