package tlswire_test

import (
	"bytes"
	"fmt"

	"repro/internal/ids"
	"repro/internal/tlswire"
)

// ExampleSynthesize builds a mutual TLS 1.2 transcript and reads the SNI
// back off the wire.
func ExampleSynthesize() {
	tr := tlswire.Synthesize(tlswire.TranscriptSpec{
		Version:     tlswire.VersionTLS12,
		SNI:         "vpn.virginia.edu",
		ServerChain: [][]byte{[]byte("server-der")},
		ClientChain: [][]byte{[]byte("client-der")},
		Established: true,
	}, ids.NewRNG(1))

	hr := tlswire.NewHandshakeReader(bytes.NewReader(tr.ClientToServer))
	h, _ := hr.Next()
	ch, _ := tlswire.ParseClientHello(h.Body)
	fmt.Println("SNI on the wire:", ch.SNI)
	fmt.Println("sniffs as TLS:", tlswire.SniffTLS(tr.ClientToServer))
	// Output:
	// SNI on the wire: vpn.virginia.edu
	// sniffs as TLS: true
}

// ExampleSniffTLS shows dynamic protocol detection rejecting non-TLS.
func ExampleSniffTLS() {
	fmt.Println(tlswire.SniffTLS([]byte("GET / HTTP/1.1\r\n")))
	// Output:
	// false
}
