package tlswire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HandshakeType identifies a handshake message.
type HandshakeType uint8

// Handshake message types (RFC 5246 §7.4, RFC 8446 §4).
const (
	TypeHelloRequest       HandshakeType = 0
	TypeClientHello        HandshakeType = 1
	TypeServerHello        HandshakeType = 2
	TypeCertificate        HandshakeType = 11
	TypeServerKeyExchange  HandshakeType = 12
	TypeCertificateRequest HandshakeType = 13
	TypeServerHelloDone    HandshakeType = 14
	TypeCertificateVerify  HandshakeType = 15
	TypeClientKeyExchange  HandshakeType = 16
	TypeFinished           HandshakeType = 20
)

// Extension numbers we encode/parse.
const (
	extServerName        uint16 = 0
	extSupportedGroups   uint16 = 10
	extECPointFormats    uint16 = 11
	extSigAlgs           uint16 = 13
	extALPN              uint16 = 16
	extSupportedVersions uint16 = 43
)

var errTruncated = errors.New("tlswire: truncated handshake message")

// byteReader is a tiny cursor over a message body (decode-from-bytes
// style, per the gopacket DecodingLayer idiom).
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.err = errTruncated
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *byteReader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.err = errTruncated
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *byteReader) u24() int {
	if r.err != nil || r.off+3 > len(r.b) {
		r.err = errTruncated
		return 0
	}
	v := int(r.b[r.off])<<16 | int(r.b[r.off+1])<<8 | int(r.b[r.off+2])
	r.off += 3
	return v
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.err = errTruncated
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

// writer builds message bodies.
type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *writer) u24(v int) {
	w.b = append(w.b, byte(v>>16), byte(v>>8), byte(v))
}
func (w *writer) raw(p []byte) { w.b = append(w.b, p...) }

// wrapHandshake prepends the 4-byte handshake header.
func wrapHandshake(t HandshakeType, body []byte) []byte {
	out := make([]byte, 0, 4+len(body))
	out = append(out, byte(t), byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	return append(out, body...)
}

// ClientHello carries the fields the monitor logs: the advertised
// versions, the SNI, and the fingerprint surface (cipher ordering,
// extension ordering, ALPN, curves) that JA3/JA4 hash.
type ClientHello struct {
	LegacyVersion     uint16
	Random            [32]byte
	CipherSuites      []uint16
	SNI               string
	SupportedVersions []uint16 // from the supported_versions extension
	ALPN              []string // application_layer_protocol_negotiation
	SupportedGroups   []uint16 // supported_groups (curves)
	ECPointFormats    []uint8  // ec_point_formats
	SigAlgs           []uint16 // signature_algorithms
	// ExtOrder is the extension types in wire order. Parse fills it;
	// Marshal follows it when non-nil (types with nothing to encode are
	// skipped), otherwise emits the populated extensions in the fixed
	// order server_name, ALPN, groups, point formats, signature
	// algorithms, supported_versions.
	ExtOrder []uint16
}

// extBody encodes one extension's body, or nil when the message has
// nothing to say for that type.
func (m *ClientHello) extBody(typ uint16) []byte {
	var w writer
	switch typ {
	case extServerName:
		if m.SNI == "" {
			return nil
		}
		w.u16(uint16(3 + len(m.SNI))) // server_name_list length
		w.u8(0)                       // name_type host_name
		w.u16(uint16(len(m.SNI)))
		w.raw([]byte(m.SNI))
	case extALPN:
		if len(m.ALPN) == 0 {
			return nil
		}
		var list writer
		for _, p := range m.ALPN {
			list.u8(uint8(len(p)))
			list.raw([]byte(p))
		}
		w.u16(uint16(len(list.b)))
		w.raw(list.b)
	case extSupportedGroups:
		if len(m.SupportedGroups) == 0 {
			return nil
		}
		w.u16(uint16(2 * len(m.SupportedGroups)))
		for _, g := range m.SupportedGroups {
			w.u16(g)
		}
	case extECPointFormats:
		if len(m.ECPointFormats) == 0 {
			return nil
		}
		w.u8(uint8(len(m.ECPointFormats)))
		for _, f := range m.ECPointFormats {
			w.u8(f)
		}
	case extSigAlgs:
		if len(m.SigAlgs) == 0 {
			return nil
		}
		w.u16(uint16(2 * len(m.SigAlgs)))
		for _, s := range m.SigAlgs {
			w.u16(s)
		}
	case extSupportedVersions:
		if len(m.SupportedVersions) == 0 {
			return nil
		}
		w.u8(uint8(2 * len(m.SupportedVersions)))
		for _, v := range m.SupportedVersions {
			w.u16(v)
		}
	default:
		return nil
	}
	return w.b
}

// defaultExtOrder is the emission order when ExtOrder is unset; the
// server_name-then-supported_versions prefix keeps profile-free hellos
// byte-identical to the pre-fingerprint encoder.
var defaultExtOrder = []uint16{
	extServerName, extSupportedVersions, extALPN,
	extSupportedGroups, extECPointFormats, extSigAlgs,
}

// Marshal encodes the message including its handshake header.
func (m *ClientHello) Marshal() []byte {
	var w writer
	w.u16(m.LegacyVersion)
	w.raw(m.Random[:])
	w.u8(0) // empty session id
	w.u16(uint16(2 * len(m.CipherSuites)))
	for _, cs := range m.CipherSuites {
		w.u16(cs)
	}
	w.u8(1) // compression methods
	w.u8(0) // null
	order := m.ExtOrder
	if order == nil {
		order = defaultExtOrder
	}
	var ext writer
	for _, typ := range order {
		body := m.extBody(typ)
		if body == nil {
			continue
		}
		ext.u16(typ)
		ext.u16(uint16(len(body)))
		ext.raw(body)
	}
	w.u16(uint16(len(ext.b)))
	w.raw(ext.b)
	return wrapHandshake(TypeClientHello, w.b)
}

// ParseClientHello decodes a ClientHello body (handshake header removed).
func ParseClientHello(body []byte) (*ClientHello, error) {
	r := &byteReader{b: body}
	m := &ClientHello{LegacyVersion: r.u16()}
	copy(m.Random[:], r.bytes(32))
	r.bytes(int(r.u8())) // session id
	nCS := int(r.u16())
	if nCS%2 != 0 {
		return nil, fmt.Errorf("tlswire: odd cipher suite length %d", nCS)
	}
	for i := 0; i < nCS/2; i++ {
		m.CipherSuites = append(m.CipherSuites, r.u16())
	}
	r.bytes(int(r.u8())) // compression methods
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() == 0 {
		return m, nil // extensions optional
	}
	extLen := int(r.u16())
	exts := r.bytes(extLen)
	if r.err != nil {
		return nil, r.err
	}
	er := &byteReader{b: exts}
	seenExt := make(map[uint16]bool)
	for er.remaining() >= 4 {
		typ := er.u16()
		data := er.bytes(int(er.u16()))
		if er.err != nil {
			return nil, er.err
		}
		// Record each type once: Marshal emits one extension per type, so
		// a duplicated type must not re-encode twice (it could overflow
		// the u16 block length that bounded the original).
		if !seenExt[typ] {
			seenExt[typ] = true
			m.ExtOrder = append(m.ExtOrder, typ)
		}
		switch typ {
		case extServerName:
			dr := &byteReader{b: data}
			dr.u16() // list length
			if dr.u8() == 0 {
				m.SNI = string(dr.bytes(int(dr.u16())))
			}
			if dr.err != nil {
				return nil, dr.err
			}
		case extSupportedVersions:
			dr := &byteReader{b: data}
			n := int(dr.u8())
			for i := 0; i < n/2; i++ {
				m.SupportedVersions = append(m.SupportedVersions, dr.u16())
			}
			if dr.err != nil {
				return nil, dr.err
			}
		case extALPN:
			dr := &byteReader{b: data}
			list := &byteReader{b: dr.bytes(int(dr.u16()))}
			if dr.err != nil {
				return nil, dr.err
			}
			for list.remaining() > 0 {
				p := list.bytes(int(list.u8()))
				if list.err != nil {
					return nil, list.err
				}
				m.ALPN = append(m.ALPN, string(p))
			}
		case extSupportedGroups:
			dr := &byteReader{b: data}
			n := int(dr.u16())
			for i := 0; i < n/2; i++ {
				m.SupportedGroups = append(m.SupportedGroups, dr.u16())
			}
			if dr.err != nil {
				return nil, dr.err
			}
		case extECPointFormats:
			dr := &byteReader{b: data}
			n := int(dr.u8())
			for i := 0; i < n; i++ {
				m.ECPointFormats = append(m.ECPointFormats, dr.u8())
			}
			if dr.err != nil {
				return nil, dr.err
			}
		case extSigAlgs:
			dr := &byteReader{b: data}
			n := int(dr.u16())
			for i := 0; i < n/2; i++ {
				m.SigAlgs = append(m.SigAlgs, dr.u16())
			}
			if dr.err != nil {
				return nil, dr.err
			}
		}
	}
	return m, nil
}

// ServerHello carries the negotiated version and cipher suite.
type ServerHello struct {
	LegacyVersion uint16
	Random        [32]byte
	CipherSuite   uint16
	// SelectedVersion is nonzero when the supported_versions extension is
	// present — the TLS 1.3 negotiation signal.
	SelectedVersion uint16
}

// NegotiatedVersion returns the effective protocol version.
func (m *ServerHello) NegotiatedVersion() uint16 {
	if m.SelectedVersion != 0 {
		return m.SelectedVersion
	}
	return m.LegacyVersion
}

// Marshal encodes the message including its handshake header.
func (m *ServerHello) Marshal() []byte {
	var w writer
	w.u16(m.LegacyVersion)
	w.raw(m.Random[:])
	w.u8(0) // empty session id
	w.u16(m.CipherSuite)
	w.u8(0) // null compression
	var ext writer
	if m.SelectedVersion != 0 {
		ext.u16(extSupportedVersions)
		ext.u16(2)
		ext.u16(m.SelectedVersion)
	}
	w.u16(uint16(len(ext.b)))
	w.raw(ext.b)
	return wrapHandshake(TypeServerHello, w.b)
}

// ParseServerHello decodes a ServerHello body.
func ParseServerHello(body []byte) (*ServerHello, error) {
	r := &byteReader{b: body}
	m := &ServerHello{LegacyVersion: r.u16()}
	copy(m.Random[:], r.bytes(32))
	r.bytes(int(r.u8())) // session id
	m.CipherSuite = r.u16()
	r.u8() // compression
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() == 0 {
		return m, nil
	}
	exts := r.bytes(int(r.u16()))
	if r.err != nil {
		return nil, r.err
	}
	er := &byteReader{b: exts}
	for er.remaining() >= 4 {
		typ := er.u16()
		data := er.bytes(int(er.u16()))
		if er.err != nil {
			return nil, er.err
		}
		if typ == extSupportedVersions && len(data) == 2 {
			m.SelectedVersion = binary.BigEndian.Uint16(data)
		}
	}
	return m, nil
}

// CertificateMsg is the TLS 1.2 Certificate message: a chain of DER certs,
// leaf first.
type CertificateMsg struct {
	Chain [][]byte
}

// Marshal encodes the message including its handshake header.
func (m *CertificateMsg) Marshal() []byte {
	var inner writer
	for _, der := range m.Chain {
		inner.u24(len(der))
		inner.raw(der)
	}
	var w writer
	w.u24(len(inner.b))
	w.raw(inner.b)
	return wrapHandshake(TypeCertificate, w.b)
}

// ParseCertificateMsg decodes a Certificate body.
func ParseCertificateMsg(body []byte) (*CertificateMsg, error) {
	r := &byteReader{b: body}
	total := r.u24()
	inner := r.bytes(total)
	if r.err != nil {
		return nil, r.err
	}
	ir := &byteReader{b: inner}
	m := &CertificateMsg{}
	for ir.remaining() > 0 {
		der := ir.bytes(ir.u24())
		if ir.err != nil {
			return nil, ir.err
		}
		m.Chain = append(m.Chain, append([]byte(nil), der...))
	}
	return m, nil
}

// CertificateRequestMsg is the server's request for client authentication —
// the message that makes a handshake mutual.
type CertificateRequestMsg struct {
	CertTypes []uint8
}

// Marshal encodes the message including its handshake header.
func (m *CertificateRequestMsg) Marshal() []byte {
	var w writer
	types := m.CertTypes
	if len(types) == 0 {
		types = []uint8{1, 64} // rsa_sign, ecdsa_sign
	}
	w.u8(uint8(len(types)))
	for _, t := range types {
		w.u8(t)
	}
	w.u16(0) // supported_signature_algorithms (empty: pre-1.2 style)
	w.u16(0) // certificate_authorities (empty = any)
	return wrapHandshake(TypeCertificateRequest, w.b)
}

// ParseCertificateRequest decodes a CertificateRequest body.
func ParseCertificateRequest(body []byte) (*CertificateRequestMsg, error) {
	r := &byteReader{b: body}
	n := int(r.u8())
	m := &CertificateRequestMsg{CertTypes: append([]uint8(nil), r.bytes(n)...)}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}
