package tlswire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/ids"
)

// fuzzSeeds renders a few real transcripts so the fuzzer starts from
// well-formed TLS byte streams instead of discovering the record framing
// from scratch.
func fuzzSeeds() [][]byte {
	rng := ids.NewRNG(20240504)
	der := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i * 7)
		}
		return b
	}
	specs := []TranscriptSpec{
		{Version: VersionTLS12, SNI: "example.com", ServerChain: [][]byte{der(64), der(48)}, Established: true},
		{Version: VersionTLS12, SNI: "mtls.example.com", ServerChain: [][]byte{der(64)},
			ClientChain: [][]byte{der(40)}, RequestClientCert: true, Established: true},
		{Version: VersionTLS13, SNI: "opaque.example.com", ServerChain: [][]byte{der(64)}, Established: true},
		{Version: VersionTLS12, ServerChain: [][]byte{der(64)}, Established: false},
	}
	var out [][]byte
	for _, spec := range specs {
		tr := Synthesize(spec, rng)
		out = append(out, tr.ClientToServer, tr.ServerToClient)
	}
	return out
}

// FuzzRecordDecode drives the full passive-monitor decode path — record
// framing, cross-record handshake reassembly, and every per-message
// parser — over arbitrary bytes. The decoders must never panic and never
// loop: every error path and every parsed message must consume input.
func FuzzRecordDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{0x16, 0x03, 0x01, 0x00, 0x00})
	f.Add([]byte{0x14, 0x03, 0x03, 0x00, 0x01, 0x01, 0x17, 0x03, 0x03, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw record framing: bounded by input length, each record
		// consumes at least its 5-byte header.
		rr := NewRecordReader(bytes.NewReader(data))
		for i := 0; i <= len(data)/5+1; i++ {
			if _, err := rr.Next(); err != nil {
				break
			}
		}

		// Reassembled handshake messages plus the per-type parsers the
		// analyzer applies to each body.
		hr := NewHandshakeReader(bytes.NewReader(data))
		for i := 0; i <= len(data)+4; i++ {
			h, err := hr.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrEncrypted) && !errors.Is(err, ErrNotTLS) &&
					err.Error() == "" {
					t.Fatalf("error with empty message: %#v", err)
				}
				break
			}
			switch h.Msg {
			case TypeClientHello:
				if ch, err := ParseClientHello(h.Body); err == nil && ch == nil {
					t.Fatal("ParseClientHello: nil message with nil error")
				}
			case TypeServerHello:
				if sh, err := ParseServerHello(h.Body); err == nil {
					VersionString(sh.NegotiatedVersion())
				}
			case TypeCertificate:
				if cm, err := ParseCertificateMsg(h.Body); err == nil && cm == nil {
					t.Fatal("ParseCertificateMsg: nil message with nil error")
				}
			case TypeCertificateRequest:
				if cr, err := ParseCertificateRequest(h.Body); err == nil && cr == nil {
					t.Fatal("ParseCertificateRequest: nil message with nil error")
				}
			}
		}

		// The DPD sniffer must be total on arbitrary prefixes.
		SniffTLS(data)
	})
}

// FuzzParseClientHello hits the densest parser (extensions, SNI
// decoding) directly, without needing the fuzzer to construct valid
// record framing first.
func FuzzParseClientHello(f *testing.F) {
	rng := ids.NewRNG(1)
	ch := &ClientHello{LegacyVersion: VersionTLS12, CipherSuites: []uint16{0x1301}, SNI: "fuzz.example.com"}
	fillRandom(&ch.Random, rng)
	body := ch.Marshal()
	f.Add(body[4:]) // Marshal wraps in the 4-byte handshake header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		ch, err := ParseClientHello(body)
		if err != nil {
			return
		}
		// A parsed hello must re-parse after a marshal round trip: the
		// writer and parser agree on the wire layout.
		again, err := ParseClientHello(ch.Marshal()[4:])
		if err != nil {
			t.Fatalf("marshal of parsed hello does not re-parse: %v", err)
		}
		if again.SNI != ch.SNI || again.LegacyVersion != ch.LegacyVersion {
			t.Fatalf("round trip diverged: %+v vs %+v", ch, again)
		}
	})
}
