package tlswire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello handshake")
	if err := WriteRecord(&buf, RecordHandshake, VersionTLS12, payload); err != nil {
		t.Fatal(err)
	}
	rr := NewRecordReader(&buf)
	rec, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecordHandshake || rec.Version != VersionTLS12 || !bytes.Equal(rec.Payload, payload) {
		t.Fatalf("record = %+v", rec)
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRecordFragmentation(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, 1<<14+100) // forces two records
	for i := range big {
		big[i] = byte(i)
	}
	if err := WriteRecord(&buf, RecordHandshake, VersionTLS12, big); err != nil {
		t.Fatal(err)
	}
	rr := NewRecordReader(&buf)
	var got []byte
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec.Payload...)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("fragmented payload did not reassemble")
	}
}

func TestRecordReaderRejectsGarbage(t *testing.T) {
	rr := NewRecordReader(bytes.NewReader([]byte("GET / HTTP/1.1\r\n")))
	if _, err := rr.Next(); !errors.Is(err, ErrNotTLS) {
		t.Fatalf("expected ErrNotTLS, got %v", err)
	}
}

func TestRecordReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, RecordHandshake, VersionTLS12, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	rr := NewRecordReader(bytes.NewReader(trunc))
	if _, err := rr.Next(); err == nil {
		t.Fatal("truncated record should error")
	}
}

func TestClientHelloRoundTrip(t *testing.T) {
	ch := &ClientHello{
		LegacyVersion:     VersionTLS12,
		CipherSuites:      []uint16{0x1301, 0xc02f},
		SNI:               "health.virginia.edu",
		SupportedVersions: []uint16{VersionTLS13, VersionTLS12},
	}
	ch.Random[0] = 0xaa
	msg := ch.Marshal()
	if HandshakeType(msg[0]) != TypeClientHello {
		t.Fatal("wrong message type")
	}
	got, err := ParseClientHello(msg[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.SNI != ch.SNI {
		t.Fatalf("SNI = %q", got.SNI)
	}
	if len(got.CipherSuites) != 2 || got.CipherSuites[0] != 0x1301 {
		t.Fatalf("suites = %v", got.CipherSuites)
	}
	if len(got.SupportedVersions) != 2 || got.SupportedVersions[0] != VersionTLS13 {
		t.Fatalf("versions = %v", got.SupportedVersions)
	}
	if got.Random[0] != 0xaa {
		t.Fatal("random lost")
	}
}

func TestClientHelloNoExtensions(t *testing.T) {
	ch := &ClientHello{LegacyVersion: VersionTLS10, CipherSuites: []uint16{0x002f}}
	got, err := ParseClientHello(ch.Marshal()[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.SNI != "" || len(got.SupportedVersions) != 0 {
		t.Fatal("phantom extensions")
	}
}

func TestParseClientHelloTruncated(t *testing.T) {
	ch := &ClientHello{LegacyVersion: VersionTLS12, CipherSuites: []uint16{1}, SNI: "x.com"}
	msg := ch.Marshal()[4:]
	for cut := 1; cut < len(msg); cut += 7 {
		if _, err := ParseClientHello(msg[:cut]); err == nil {
			// Some prefixes happen to be valid shorter messages only if
			// they end exactly at the pre-extension boundary; anything
			// else must error. Verify no panic occurred, which is the
			// real contract.
			_ = err
		}
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	sh := &ServerHello{LegacyVersion: VersionTLS12, CipherSuite: 0x1301, SelectedVersion: VersionTLS13}
	got, err := ParseServerHello(sh.Marshal()[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.NegotiatedVersion() != VersionTLS13 {
		t.Fatalf("negotiated = %x", got.NegotiatedVersion())
	}
	sh12 := &ServerHello{LegacyVersion: VersionTLS12, CipherSuite: 0xc02f}
	got12, err := ParseServerHello(sh12.Marshal()[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got12.NegotiatedVersion() != VersionTLS12 {
		t.Fatalf("negotiated = %x", got12.NegotiatedVersion())
	}
}

func TestCertificateMsgRoundTrip(t *testing.T) {
	chain := [][]byte{[]byte("leaf-der-bytes"), []byte("intermediate-der")}
	m := &CertificateMsg{Chain: chain}
	got, err := ParseCertificateMsg(m.Marshal()[4:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chain) != 2 || !bytes.Equal(got.Chain[0], chain[0]) || !bytes.Equal(got.Chain[1], chain[1]) {
		t.Fatalf("chain = %v", got.Chain)
	}
}

func TestEmptyCertificateMsg(t *testing.T) {
	// A client declining authentication sends an empty Certificate.
	m := &CertificateMsg{}
	got, err := ParseCertificateMsg(m.Marshal()[4:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chain) != 0 {
		t.Fatal("expected empty chain")
	}
}

func TestCertificateRequestRoundTrip(t *testing.T) {
	m := &CertificateRequestMsg{CertTypes: []uint8{1, 64}}
	got, err := ParseCertificateRequest(m.Marshal()[4:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.CertTypes) != 2 || got.CertTypes[1] != 64 {
		t.Fatalf("types = %v", got.CertTypes)
	}
}

func TestSniffTLS(t *testing.T) {
	rng := ids.NewRNG(1)
	tr := Synthesize(TranscriptSpec{
		Version: VersionTLS12, SNI: "a.com",
		ServerChain: [][]byte{[]byte("s")}, Established: true,
	}, rng)
	if !SniffTLS(tr.ClientToServer) {
		t.Fatal("client stream should sniff as TLS")
	}
	if SniffTLS([]byte("GET / HTTP/1.1\r\nHost: x\r\n")) {
		t.Fatal("HTTP sniffed as TLS")
	}
	if SniffTLS([]byte{0x16, 0x03}) {
		t.Fatal("short prefix sniffed as TLS")
	}
}

func readAllHandshakes(t *testing.T, stream []byte) []Handshake {
	t.Helper()
	hr := NewHandshakeReader(bytes.NewReader(stream))
	var out []Handshake
	for {
		h, err := hr.Next()
		if err == io.EOF || errors.Is(err, ErrEncrypted) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, h)
	}
}

func TestSynthesizeMutualTLS12(t *testing.T) {
	rng := ids.NewRNG(7)
	serverChain := [][]byte{[]byte("server-leaf"), []byte("server-inter")}
	clientChain := [][]byte{[]byte("client-leaf")}
	tr := Synthesize(TranscriptSpec{
		Version:     VersionTLS12,
		SNI:         "idrive.com",
		ServerChain: serverChain,
		ClientChain: clientChain,
		Established: true,
	}, rng)

	c2s := readAllHandshakes(t, tr.ClientToServer)
	s2c := readAllHandshakes(t, tr.ServerToClient)

	// Client side: ClientHello, Certificate, ClientKeyExchange, CertificateVerify.
	if c2s[0].Msg != TypeClientHello {
		t.Fatalf("first c2s = %v", c2s[0].Msg)
	}
	ch, err := ParseClientHello(c2s[0].Body)
	if err != nil || ch.SNI != "idrive.com" {
		t.Fatalf("SNI = %v err=%v", ch, err)
	}
	var sawClientCert bool
	for _, h := range c2s {
		if h.Msg == TypeCertificate {
			cm, err := ParseCertificateMsg(h.Body)
			if err != nil {
				t.Fatal(err)
			}
			if len(cm.Chain) != 1 || !bytes.Equal(cm.Chain[0], clientChain[0]) {
				t.Fatal("client chain mismatch")
			}
			sawClientCert = true
		}
	}
	if !sawClientCert {
		t.Fatal("no client Certificate message")
	}

	// Server side: ServerHello, Certificate, CertificateRequest, HelloDone.
	var sawReq, sawServerCert, sawDone bool
	for _, h := range s2c {
		switch h.Msg {
		case TypeCertificate:
			cm, err := ParseCertificateMsg(h.Body)
			if err != nil {
				t.Fatal(err)
			}
			if len(cm.Chain) != 2 {
				t.Fatalf("server chain len = %d", len(cm.Chain))
			}
			sawServerCert = true
		case TypeCertificateRequest:
			sawReq = true
		case TypeServerHelloDone:
			sawDone = true
		}
	}
	if !sawServerCert || !sawReq || !sawDone {
		t.Fatalf("server flight incomplete: cert=%v req=%v done=%v", sawServerCert, sawReq, sawDone)
	}
}

func TestSynthesizeTLS13HidesCertificates(t *testing.T) {
	rng := ids.NewRNG(9)
	tr := Synthesize(TranscriptSpec{
		Version:     VersionTLS13,
		SNI:         "secret.example.com",
		ServerChain: [][]byte{[]byte("invisible")},
		ClientChain: [][]byte{[]byte("also-invisible")},
		Established: true,
	}, rng)
	for _, h := range readAllHandshakes(t, tr.ServerToClient) {
		if h.Msg == TypeCertificate {
			t.Fatal("TLS 1.3 transcript leaked a Certificate message")
		}
	}
	// The SNI is still visible (ClientHello is cleartext in 1.3).
	c2s := readAllHandshakes(t, tr.ClientToServer)
	ch, err := ParseClientHello(c2s[0].Body)
	if err != nil || ch.SNI != "secret.example.com" {
		t.Fatal("1.3 ClientHello should still carry SNI")
	}
	if len(ch.SupportedVersions) == 0 || ch.SupportedVersions[0] != VersionTLS13 {
		t.Fatal("1.3 ClientHello missing supported_versions")
	}
}

func TestSynthesizeNonMutual(t *testing.T) {
	rng := ids.NewRNG(3)
	tr := Synthesize(TranscriptSpec{
		Version:     VersionTLS12,
		ServerChain: [][]byte{[]byte("s")},
		Established: true,
	}, rng)
	for _, h := range readAllHandshakes(t, tr.ServerToClient) {
		if h.Msg == TypeCertificateRequest {
			t.Fatal("non-mutual handshake should not request a client cert")
		}
	}
	for _, h := range readAllHandshakes(t, tr.ClientToServer) {
		if h.Msg == TypeCertificate {
			t.Fatal("non-mutual handshake should not carry a client cert")
		}
	}
}

func TestSynthesizeFailedHandshake(t *testing.T) {
	rng := ids.NewRNG(4)
	tr := Synthesize(TranscriptSpec{
		Version:     VersionTLS12,
		ServerChain: [][]byte{[]byte("s")},
		ClientChain: [][]byte{[]byte("c")},
		Established: false,
	}, rng)
	for _, h := range readAllHandshakes(t, tr.ClientToServer) {
		if h.Msg == TypeCertificate {
			t.Fatal("aborted handshake must not complete client flight")
		}
	}
}

func TestHandshakeReaderStopsAtEncryption(t *testing.T) {
	var buf bytes.Buffer
	must(WriteRecord(&buf, RecordChangeCipherSpec, VersionTLS12, []byte{1}))
	must(WriteRecord(&buf, RecordHandshake, VersionTLS12, wrapHandshake(TypeFinished, []byte("x"))))
	hr := NewHandshakeReader(&buf)
	if _, err := hr.Next(); !errors.Is(err, ErrEncrypted) {
		t.Fatalf("expected ErrEncrypted, got %v", err)
	}
}

func TestVersionString(t *testing.T) {
	if VersionString(VersionTLS12) != "TLSv12" || VersionString(VersionTLS13) != "TLSv13" {
		t.Fatal("version strings wrong")
	}
	if VersionString(0x0207) == "" {
		t.Fatal("unknown version should still render")
	}
}

// Property: ClientHello round-trips arbitrary SNI strings (up to length
// limits) without corruption and without panics.
func TestClientHelloSNIProperty(t *testing.T) {
	f := func(sni string) bool {
		if len(sni) > 1000 {
			sni = sni[:1000]
		}
		ch := &ClientHello{LegacyVersion: VersionTLS12, CipherSuites: []uint16{1}, SNI: sni}
		got, err := ParseClientHello(ch.Marshal()[4:])
		if err != nil {
			return false
		}
		return got.SNI == sni
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the handshake reader never panics on arbitrary bytes.
func TestHandshakeReaderFuzzSafety(t *testing.T) {
	f := func(data []byte) bool {
		hr := NewHandshakeReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			if _, err := hr.Next(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
