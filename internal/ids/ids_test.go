package ids

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork("alpha")
	c2 := parent.Fork("alpha")
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("same-label forks must be identical")
	}
	c3 := parent.Fork("beta")
	c4 := parent.Fork("alpha")
	if c3.Uint64() == c4.Fork("x").Uint64() && c3.Uint64() == c4.Uint64() {
		t.Fatal("different labels should give different streams")
	}
	// Forking must not advance the parent.
	p2 := NewRNG(7)
	if parent.Uint64() != p2.Uint64() {
		t.Fatal("Fork advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestWeightedPickDistribution(t *testing.T) {
	r := NewRNG(5)
	counts := [3]int{}
	w := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[WeightedPick(r, w)]++
	}
	// Expect roughly 10% / 20% / 70%.
	if got := float64(counts[2]) / n; got < 0.65 || got > 0.75 {
		t.Fatalf("heavy bucket share = %.3f, want ~0.70", got)
	}
	if got := float64(counts[0]) / n; got < 0.07 || got > 0.13 {
		t.Fatalf("light bucket share = %.3f, want ~0.10", got)
	}
}

func TestWeightedPickDegenerate(t *testing.T) {
	r := NewRNG(5)
	if WeightedPick(r, []float64{0, 0, 0}) != 0 {
		t.Fatal("all-zero weights should return 0")
	}
	if WeightedPick(r, []float64{-1, 0, 3}) != 2 {
		t.Fatal("only positive weight should win")
	}
}

func TestNewUIDShape(t *testing.T) {
	r := NewRNG(3)
	seen := map[UID]bool{}
	for i := 0; i < 5000; i++ {
		u := NewUID(r)
		if len(u) != 18 || u[0] != 'C' {
			t.Fatalf("bad UID shape: %q", u)
		}
		if seen[u] {
			t.Fatalf("UID collision at %d: %q", i, u)
		}
		seen[u] = true
	}
}

func TestFingerprintBytes(t *testing.T) {
	fp := FingerprintBytes([]byte("hello"))
	if !fp.Valid() {
		t.Fatalf("fingerprint not valid: %q", fp)
	}
	if fp != FingerprintBytes([]byte("hello")) {
		t.Fatal("fingerprint not deterministic")
	}
	if fp == FingerprintBytes([]byte("hellO")) {
		t.Fatal("distinct inputs collided")
	}
}

func TestFingerprintValidRejects(t *testing.T) {
	cases := []Fingerprint{"", "abc", Fingerprint(make([]byte, 64))}
	for _, c := range cases {
		if c.Valid() {
			t.Fatalf("Valid accepted %q", c)
		}
	}
	upper := FingerprintString("x")
	bad := Fingerprint("G" + string(upper[1:]))
	if bad.Valid() {
		t.Fatal("Valid accepted non-hex character")
	}
}

func TestFileIDStableAcrossObservations(t *testing.T) {
	fp := FingerprintString("certA")
	if NewFileID(fp) != NewFileID(fp) {
		t.Fatal("FileID must be a pure function of the fingerprint")
	}
	if NewFileID(fp)[0] != 'F' {
		t.Fatal("FileID must start with 'F'")
	}
}

func TestSubnetOf(t *testing.T) {
	a := netip.MustParseAddr("192.0.2.17")
	b := netip.MustParseAddr("192.0.2.200")
	c := netip.MustParseAddr("192.0.3.17")
	if SubnetOf(a) != SubnetOf(b) {
		t.Fatal("same /24 should share a key")
	}
	if SubnetOf(a) == SubnetOf(c) {
		t.Fatal("different /24s should differ")
	}
	v6a := netip.MustParseAddr("2001:db8::1")
	v6b := netip.MustParseAddr("2001:db8::ffff")
	if SubnetOf(v6a) != SubnetOf(v6b) {
		t.Fatal("same /64 should share a key")
	}
}

func TestSubnetOfStringInvalid(t *testing.T) {
	k1 := SubnetOfString("not-an-ip")
	k2 := SubnetOfString("not-an-ip")
	k3 := SubnetOfString("also-bad")
	if k1 != k2 {
		t.Fatal("invalid inputs must still group deterministically")
	}
	if k1 == k3 {
		t.Fatal("distinct invalid inputs should not collide")
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(11)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose all elements: %v", seen)
	}
}

// Property: fingerprints are injective-in-practice and always valid.
func TestFingerprintProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		fa, fb := FingerprintBytes(a), FingerprintBytes(b)
		if !fa.Valid() || !fb.Valid() {
			return false
		}
		if string(a) != string(b) && fa == fb {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WeightedPick always returns an in-range index.
func TestWeightedPickProperty(t *testing.T) {
	r := NewRNG(123)
	f := func(ws []float64) bool {
		if len(ws) == 0 {
			return true
		}
		i := WeightedPick(r, ws)
		return i >= 0 && i < len(ws)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashString64Stable(t *testing.T) {
	if HashString64("zeek") != HashString64("zeek") {
		t.Fatal("hash not stable")
	}
	if HashString64("a") == HashString64("b") {
		t.Fatal("trivial collision")
	}
}

func TestSeq(t *testing.T) {
	if got := Seq("c", 42); got != "c000042" {
		t.Fatalf("Seq = %q", got)
	}
}
