// Package ids provides the small identity primitives shared by every layer
// of the reproduction: deterministic random-number streams, Zeek-style
// connection UIDs, certificate fingerprints, and /24 subnet keys.
//
// Determinism is a design requirement (DESIGN.md §6): the whole pipeline —
// workload generation, Zeek log emission, analysis — must be reproducible
// from a single seed so that experiments can be compared run-to-run. All
// randomness in the repository flows through RNG.
package ids

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/netip"
)

// RNG is a deterministic pseudo-random stream based on splitmix64. It is
// intentionally not crypto-grade: it exists to make dataset generation
// reproducible, not to produce secrets. The zero value is a valid stream
// seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent child stream from the parent using a label,
// so that adding draws to one subsystem never perturbs another. The parent
// is not advanced.
func (r *RNG) Fork(label string) *RNG {
	h := sha256.Sum256(append(binary.BigEndian.AppendUint64(nil, r.state), label...))
	return &RNG{state: binary.BigEndian.Uint64(h[:8])}
}

// Uint64 returns the next 64-bit value (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("ids: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n) for int64 n. It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("ids: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// WeightedPick returns the index selected from the weight vector. Weights
// need not be normalized; non-positive weights are treated as zero. If all
// weights are zero it returns 0.
func WeightedPick(r *RNG, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// uidAlphabet matches Zeek's base-62 connection UID alphabet.
const uidAlphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// UID is a Zeek-style connection identifier, e.g. "CJ3xTn1c4Zw7TozN3".
type UID string

// NewUID derives a UID from the stream. The leading 'C' mirrors Zeek's
// convention for connection UIDs.
func NewUID(r *RNG) UID {
	buf := make([]byte, 0, 18)
	buf = append(buf, 'C')
	v := r.Uint64()
	w := r.Uint64()
	for i := 0; i < 9; i++ {
		buf = append(buf, uidAlphabet[v%62])
		v /= 62
	}
	for i := 0; i < 8; i++ {
		buf = append(buf, uidAlphabet[w%62])
		w /= 62
	}
	return UID(buf)
}

// FileID is a Zeek-style file/certificate identifier ("F..." prefix), used
// to link x509.log rows back to ssl.log certificate chains.
type FileID string

// NewFileID derives a FileID deterministically from a certificate
// fingerprint, so the same certificate observed twice yields the same ID.
func NewFileID(fp Fingerprint) FileID {
	return FileID("F" + string(fp[:17]))
}

// Fingerprint is the lowercase hex SHA-256 of a certificate's DER bytes —
// the canonical identity for "unique certificates" throughout the paper.
type Fingerprint string

// FingerprintBytes fingerprints raw DER bytes.
func FingerprintBytes(der []byte) Fingerprint {
	sum := sha256.Sum256(der)
	return Fingerprint(hex.EncodeToString(sum[:]))
}

// FingerprintString fingerprints an arbitrary string key. The workload
// generator uses this for bulk-path certificates that carry a synthetic
// identity instead of DER bytes.
func FingerprintString(s string) Fingerprint {
	sum := sha256.Sum256([]byte(s))
	return Fingerprint(hex.EncodeToString(sum[:]))
}

// Valid reports whether the fingerprint looks like a SHA-256 hex digest.
func (f Fingerprint) Valid() bool {
	if len(f) != 64 {
		return false
	}
	for i := 0; i < len(f); i++ {
		c := f[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Short returns an abbreviated form for logs and tables.
func (f Fingerprint) Short() string {
	if len(f) < 12 {
		return string(f)
	}
	return string(f[:12])
}

// SubnetKey identifies a /24 (IPv4) or /64 (IPv6) subnet; the paper's
// Table 6 counts certificate spread across /24 subnets.
type SubnetKey string

// SubnetOf maps an address to its subnet key.
func SubnetOf(addr netip.Addr) SubnetKey {
	if addr.Is4() {
		p, _ := addr.Prefix(24)
		return SubnetKey(p.String())
	}
	p, _ := addr.Prefix(64)
	return SubnetKey(p.String())
}

// SubnetOfString is SubnetOf for textual addresses; invalid input yields a
// key that still groups identical strings together rather than an error,
// because log files may contain malformed endpoints we still need to count.
func SubnetOfString(s string) SubnetKey {
	addr, err := netip.ParseAddr(s)
	if err != nil {
		return SubnetKey("invalid/" + s)
	}
	return SubnetOf(addr)
}

// HashString64 is a stable 64-bit FNV-1a hash used for cheap sharding
// decisions in the analyzer.
func HashString64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Seq formats a zero-padded sequence label ("c000042") used to synthesize
// stable entity member names.
func Seq(prefix string, n int) string { return fmt.Sprintf("%s%06d", prefix, n) }
