package atomicfile

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteToCommits is the happy path: the final file holds exactly the
// emitted bytes and no temp file survives.
func TestWriteToCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFile(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("committed %q, want %q", got, "payload")
	}
	if _, err := os.Stat(TempName(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file survived a clean commit: %v", err)
	}
}

// TestWriteToFailpoints injects a failure at every stage of the commit
// protocol and asserts the invariant the checkpoint path depends on: a
// failed commit never replaces the previous committed content and never
// leaves a temp file behind (except past the rename, where the commit
// has already happened).
func TestWriteToFailpoints(t *testing.T) {
	boom := errors.New("injected")
	for _, stage := range []Stage{StageCreate, StageWrite, StageSync, StageClose, StageRename} {
		t.Run(string(stage), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "state")
			if err := WriteFile(path, []byte("generation-1")); err != nil {
				t.Fatal(err)
			}
			Failpoint = func(s Stage, _ string) error {
				if s == stage {
					return boom
				}
				return nil
			}
			defer func() { Failpoint = nil }()
			err := WriteFile(path, []byte("generation-2"))
			if !errors.Is(err, boom) {
				t.Fatalf("stage %s: err = %v, want injected failure", stage, err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "generation-1" {
				t.Fatalf("stage %s: previous commit replaced by %q", stage, got)
			}
			if _, err := os.Stat(TempName(path)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("stage %s: temp file left behind", stage)
			}
		})
	}
}

// TestWriteToSyncDirFailureAfterRename: a failure fsyncing the directory
// is reported, but the rename has already landed — the caller sees the
// new content together with the error, exactly the ambiguity a real
// power loss in that window leaves.
func TestWriteToSyncDirFailureAfterRename(t *testing.T) {
	boom := errors.New("injected")
	path := filepath.Join(t.TempDir(), "state")
	Failpoint = func(s Stage, _ string) error {
		if s == StageSyncDir {
			return boom
		}
		return nil
	}
	defer func() { Failpoint = nil }()
	err := WriteFile(path, []byte("x"))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != "x" {
		t.Fatalf("rename did not land: %q, %v", got, err)
	}
}

// TestWriteToEmitError: the emit callback failing removes the temp and
// propagates the error unwrapped.
func TestWriteToEmitError(t *testing.T) {
	boom := errors.New("emit failed")
	path := filepath.Join(t.TempDir(), "state")
	err := WriteTo(path, func(*os.File) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want emit error", err)
	}
	if _, err := os.Stat(TempName(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind after emit failure")
	}
}

// TestSweepTemps removes stale partials, honors the keep list, and
// leaves committed files alone.
func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk("state")
	mk("state.tmp")
	mk("other.tmp")
	mk("live.tmp")
	SweepTemps(dir, "*.tmp", "live.tmp")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	got := strings.Join(names, ",")
	if got != "live.tmp,state" {
		t.Fatalf("after sweep: %s, want live.tmp,state", got)
	}
}

func TestWriteToEmitWriteError(t *testing.T) {
	// A write that fails inside emit (closed file) must not commit.
	path := filepath.Join(t.TempDir(), "state")
	err := WriteTo(path, func(f *os.File) error {
		f.Close()
		_, werr := f.Write([]byte("x"))
		if werr == nil {
			return fmt.Errorf("write on closed file succeeded")
		}
		return werr
	})
	if err == nil {
		t.Fatal("commit succeeded despite emit failure")
	}
	if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
		t.Fatalf("final path exists after failed emit: %v", serr)
	}
}
