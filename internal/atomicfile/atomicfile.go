// Package atomicfile is the one place the repository commits files to
// disk durably. Every "write a temp file and rename it into place"
// site — engine checkpoints, sharded manifests, mtls.WriteLogs — used
// to hand-roll Create → Encode → Close → Rename, which is atomic
// against concurrent readers but NOT against power loss: without an
// fsync of the temp file the rename can surface a zero-length or torn
// file after a crash (the rename metadata reaches the journal before
// the data pages), and without an fsync of the parent directory the
// rename itself can vanish. This package does the full protocol:
//
//	create <path>.tmp → write → fsync(file) → close → rename → fsync(dir)
//
// A failure at any stage removes the temp file and leaves any previous
// committed file untouched, so the caller always observes either the
// old content or the new — never a prefix.
//
// Failpoint is the crash-injection seam: tests set it to make a chosen
// stage fail (or to snapshot the directory "as power loss would see
// it") and assert the commit protocol held.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// Stage names a point in the commit protocol where a Failpoint can
// inject a failure.
type Stage string

const (
	StageCreate Stage = "create"
	StageWrite  Stage = "write"
	StageSync   Stage = "sync"
	StageClose  Stage = "close"
	StageRename Stage = "rename"
	// StageSyncDir runs after the rename; a failure here is reported to
	// the caller but the rename has already happened (matching the real
	// crash window: the commit may or may not survive power loss).
	StageSyncDir Stage = "syncdir"
)

// Failpoint, when non-nil, is consulted before each stage; returning a
// non-nil error makes that stage fail. Tests only — never set in
// production code paths.
var Failpoint func(stage Stage, path string) error

func failpoint(stage Stage, path string) error {
	if Failpoint == nil {
		return nil
	}
	return Failpoint(stage, path)
}

// TempName returns the temp path WriteTo commits through, exported so
// crash-recovery sweeps can identify stale partials left by a kill
// between create and rename.
func TempName(path string) string { return path + ".tmp" }

// WriteTo writes path atomically and durably: emit receives the open
// temp file, and only after it returns cleanly is the file fsynced,
// closed, renamed over path, and the parent directory fsynced. On any
// error the temp file is removed and path is untouched.
func WriteTo(path string, emit func(f *os.File) error) error {
	tmp := TempName(path)
	if err := failpoint(StageCreate, tmp); err != nil {
		return fmt.Errorf("atomicfile: create %s: %w", tmp, err)
	}
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("atomicfile: create: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := failpoint(StageWrite, tmp); err != nil {
		return fail(fmt.Errorf("atomicfile: write %s: %w", tmp, err))
	}
	if err := emit(f); err != nil {
		return fail(err)
	}
	if err := failpoint(StageSync, tmp); err != nil {
		return fail(fmt.Errorf("atomicfile: sync %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("atomicfile: sync: %w", err))
	}
	if err := failpoint(StageClose, tmp); err != nil {
		return fail(fmt.Errorf("atomicfile: close %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: close: %w", err)
	}
	return Rename(tmp, path)
}

// WriteFile is WriteTo for callers that already hold the full content.
func WriteFile(path string, data []byte) error {
	return WriteTo(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// Rename commits an already-written (and already-synced) temp file:
// rename over path, then fsync the parent directory so the rename
// itself survives power loss. Multi-file commits (mtls.WriteLogs)
// prepare every temp first and then Rename each into place.
func Rename(tmp, path string) error {
	if err := failpoint(StageRename, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: rename %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: rename: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so renames and removals inside it are
// durable. Failures are returned (a caller mid-commit wants to know)
// but the rename has already landed in the namespace.
func SyncDir(dir string) error {
	if err := failpoint(StageSyncDir, dir); err != nil {
		return fmt.Errorf("atomicfile: sync dir %s: %w", dir, err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("atomicfile: sync dir: %w", err)
	}
	return nil
}

// SweepTemps removes stale "<base>.tmp" partials matching glob inside
// dir — the residue of a crash between create and rename. keep lists
// basenames that must survive (a concurrent writer's live temp).
// Best-effort: removal errors are ignored, the next sweep retries.
func SweepTemps(dir, glob string, keep ...string) {
	matches, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		return
	}
	for _, m := range matches {
		base := filepath.Base(m)
		skip := false
		for _, k := range keep {
			if base == k {
				skip = true
				break
			}
		}
		if !skip {
			os.Remove(m)
		}
	}
}
