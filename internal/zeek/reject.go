package zeek

import (
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/metrics"
)

// Reason classifies why a row was rejected by the parser. The set is
// closed: every malformed row maps to exactly one reason, each reason is
// a label value of the RejectMetric series, and the fuzz seed corpora
// cover each one (corpus_test.go enforces this).
type Reason string

// Quarantine reasons. A 23-month deployment tallies rejections per
// reason so a sudden spike (a Zeek schema change, a corrupted disk) is
// visible on a dashboard instead of silently skewing every percentage.
const (
	// RejectFieldCount: the row does not have the schema's column count.
	RejectFieldCount Reason = "field_count"
	// RejectTimestamp: a ts/not_valid_before/not_valid_after column is
	// not a finite epoch-seconds value in the representable range.
	RejectTimestamp Reason = "timestamp"
	// RejectPort: an id.orig_p/id.resp_p column is not an integer in
	// [0, 65535].
	RejectPort Reason = "port"
	// RejectWeight: the weight column is not an integer >= 1. The writer
	// clamps weights to >= 1, so anything else corrupts weighted tallies.
	RejectWeight Reason = "weight"
	// RejectCertVersion: certificate.version is not a non-negative
	// integer.
	RejectCertVersion Reason = "cert_version"
	// RejectKeyLength: certificate.key_length is not a non-negative
	// integer.
	RejectKeyLength Reason = "key_length"
	// RejectOversizedLine: a tailed line exceeded the per-poll chunk cap
	// and was discarded wholesale (its length is unknowable until the
	// newline arrives).
	RejectOversizedLine Reason = "oversized_line"
)

// Reasons enumerates every quarantine reason.
var Reasons = []Reason{
	RejectFieldCount, RejectTimestamp, RejectPort, RejectWeight,
	RejectCertVersion, RejectKeyLength, RejectOversizedLine,
}

// RejectMetric is the per-(file, reason) rejection counter family the
// permissive parser publishes into Options.Metrics.
const RejectMetric = "zeek_rows_rejected_total"

const rejectHelp = "malformed log rows quarantined by the permissive parser"

// rejectFiles are the label values the readers use for RejectMetric's
// file label, one per log schema.
var rejectFiles = []string{"ssl", "x509"}

// RowError describes one malformed row: why it was rejected, where it
// was, and the raw line. In strict mode it is returned (wrapped) from
// the reader; in permissive mode it is routed to the quarantine instead.
type RowError struct {
	Reason Reason
	Line   int64  // 1-based line number in the source log
	Raw    string // the raw TSV line
	Err    error  // underlying cause
}

func (e *RowError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("zeek: line %d: %s: %v", e.Line, e.Reason, e.Err)
	}
	return fmt.Sprintf("zeek: %s: %v", e.Reason, e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// rowErrf builds a RowError with a formatted cause. Line and Raw are
// filled in by the reader that knows them.
func rowErrf(reason Reason, format string, args ...any) *RowError {
	return &RowError{Reason: reason, Err: fmt.Errorf(format, args...)}
}

// Options selects how the streaming readers and tailers treat malformed
// rows. The zero value is permissive with no sinks: bad rows are
// silently skipped (never wedging ingestion), counted nowhere.
//
// Strict restores fail-stop semantics: the first malformed row aborts
// with an error describing it, and a tailer does not advance its offset
// past the offending line — nothing is ever dropped silently, at the
// cost of ingestion halting until an operator intervenes.
//
// Permissive (Strict == false) quarantines: the bad row is skipped, the
// offset advances so the poison pill is consumed exactly once, the
// per-reason counter in Metrics is incremented, and the raw line is
// appended to Quarantine for offline forensics.
type Options struct {
	Strict     bool
	Quarantine *Quarantine
	Metrics    *metrics.Registry
	// BatchSize is the record-batch granularity of the batch readers
	// (ForEachSSLBatch / ForEachX509Batch); 0 means DefaultBatchSize.
	// The per-row readers ignore it.
	BatchSize int
}

// DefaultBatchSize is the batch readers' record granularity when
// Options.BatchSize is unset — sized so one batch amortizes the
// engine's per-ingest channel hop without adding meaningful latency.
const DefaultBatchSize = 512

// batchSize resolves the effective batch granularity.
func (o *Options) batchSize() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return DefaultBatchSize
}

// reject routes one quarantined row to the configured sinks.
func (o *Options) reject(file string, re *RowError) {
	if o.Metrics != nil {
		o.Metrics.Counter(RejectMetric, rejectHelp, "file", file, "reason", string(re.Reason)).Inc()
	}
	o.Quarantine.Record(file, re)
}

// RejectTotals reads back the rejection counters from a registry: the
// grand total and the per-"file/reason" breakdown (zero-valued series
// are pre-registered as a side effect, so the metric family is visible
// on /metrics from boot, not from the first corrupt row).
func RejectTotals(reg *metrics.Registry) (total uint64, byReason map[string]uint64) {
	byReason = make(map[string]uint64, len(rejectFiles)*len(Reasons))
	for _, file := range rejectFiles {
		for _, reason := range Reasons {
			v := reg.Counter(RejectMetric, rejectHelp, "file", file, "reason", string(reason)).Value()
			total += v
			if v > 0 {
				byReason[file+"/"+string(reason)] = v
			}
		}
	}
	return total, byReason
}

// DefaultQuarantineMaxBytes is the daemon's default quarantine size cap:
// generous enough that months of sporadic corruption fit with room to
// spare, small enough that a sustained malformed-row storm cannot fill
// the log volume out from under the tailers it shares it with.
const DefaultQuarantineMaxBytes = 256 << 20

// QuarantineDroppedMetric counts rows dropped because the quarantine hit
// its byte cap; QuarantineBytesMetric gauges the bytes written so far.
const (
	QuarantineDroppedMetric = "zeek_quarantine_dropped_total"
	QuarantineBytesMetric   = "zeek_quarantine_bytes"
)

// quarantineHeader is written once per sink before the first row.
const quarantineHeader = "#quarantine\tv1\n#fields\tsource\tline\treason\traw\n"

// Quarantine is an append-only sink for rejected rows: one TSV line per
// row — source log, line number, reason, and the raw line with tabs,
// newlines, and backslashes hex-escaped so one rejected row always stays
// one quarantine line. A nil *Quarantine discards everything, and a sink
// write error never fails the pipeline (the first one is retained for
// inspection via Err) — quarantining exists so ingestion can continue,
// so it must not itself become a poison pill.
//
// SetMaxBytes caps the sink: once the cap would be exceeded the row is
// dropped and counted instead of written, because a malformed-row storm
// must not fill the disk during a soak — the per-reason rejection
// counters still tally every row, so nothing goes unnoticed, only the
// raw forensics are bounded.
type Quarantine struct {
	mu       sync.Mutex
	w        io.Writer
	c        io.Closer
	opened   bool
	n        uint64
	err      error
	maxBytes int64 // 0 = unlimited
	bytes    int64 // written so far (seeded with the file size on open)
	dropped  uint64
	droppedC *metrics.Counter
	bytesG   *metrics.Gauge
}

// NewQuarantine wraps an arbitrary sink.
func NewQuarantine(w io.Writer) *Quarantine { return &Quarantine{w: w} }

// OpenQuarantine opens (appending, creating if needed) a quarantine file.
// An existing file's size counts against any byte cap set later — the cap
// bounds the file, not this process's contribution to it.
func OpenQuarantine(path string) (*Quarantine, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	q := &Quarantine{w: f, c: f}
	if fi, err := f.Stat(); err == nil {
		q.bytes = fi.Size()
	}
	return q, nil
}

// SetMaxBytes caps the sink at n bytes (n <= 0 removes the cap). Rows
// that would push past the cap are dropped and counted via Dropped.
func (q *Quarantine) SetMaxBytes(n int64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if n < 0 {
		n = 0
	}
	q.maxBytes = n
}

// Instrument publishes the overflow counter and byte gauge into reg.
func (q *Quarantine) Instrument(reg *metrics.Registry) {
	if q == nil || reg == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.droppedC = reg.Counter(QuarantineDroppedMetric, "rejected rows dropped at the quarantine byte cap")
	q.bytesG = reg.Gauge(QuarantineBytesMetric, "bytes in the quarantine sink")
	q.droppedC.Add(q.dropped)
	q.bytesG.Set(float64(q.bytes))
}

// Record appends one rejected row.
func (q *Quarantine) Record(file string, re *RowError) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
	if q.err != nil {
		return
	}
	line := fmt.Sprintf("%s\t%d\t%s\t%s\n",
		file, re.Line, re.Reason, escapeField(re.Raw))
	need := int64(len(line))
	if !q.opened {
		need += int64(len(quarantineHeader))
	}
	if q.maxBytes > 0 && q.bytes+need > q.maxBytes {
		q.dropped++
		if q.droppedC != nil {
			q.droppedC.Inc()
		}
		return
	}
	if !q.opened {
		if _, err := io.WriteString(q.w, quarantineHeader); err != nil {
			q.err = err
			return
		}
		q.opened = true
		q.bytes += int64(len(quarantineHeader))
	}
	if _, err := io.WriteString(q.w, line); err != nil {
		q.err = err
		return
	}
	q.bytes += int64(len(line))
	if q.bytesG != nil {
		q.bytesG.Set(float64(q.bytes))
	}
}

// Dropped is the number of rows lost to the byte cap.
func (q *Quarantine) Dropped() uint64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Bytes is the sink size so far (including any pre-existing file bytes).
func (q *Quarantine) Bytes() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.bytes
}

// Count is the number of rows recorded (including any lost to a sink
// error).
func (q *Quarantine) Count() uint64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Err reports the first sink write error, if any.
func (q *Quarantine) Err() error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Close closes the underlying file when the quarantine owns one.
func (q *Quarantine) Close() error {
	if q == nil || q.c == nil {
		return nil
	}
	return q.c.Close()
}
