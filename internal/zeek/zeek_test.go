package zeek

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/tlswire"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func sampleCert(t *testing.T, serial string) *certmodel.CertInfo {
	t.Helper()
	c := &certmodel.CertInfo{
		SerialHex: serial,
		Version:   3,
		IssuerCN:  "FXP DCAU Cert", IssuerOrg: "Globus Online",
		SubjectCN: "user, with comma", SubjectOrg: "Univ",
		SANDNS:    []string{"a.example.com", "b.example.com"},
		SANIP:     []string{"192.0.2.1"},
		NotBefore: date(2023, 1, 1), NotAfter: date(2023, 1, 15),
		KeyAlg: certmodel.KeyECDSA, KeyBits: 256,
	}
	c.Fingerprint = certmodel.SyntheticFingerprint(c, serial)
	return c
}

func TestSSLRecordMutual(t *testing.T) {
	r := &SSLRecord{}
	if r.IsMutual() {
		t.Fatal("empty record is not mutual")
	}
	r.ServerChain = []ids.Fingerprint{"s"}
	if r.IsMutual() {
		t.Fatal("server-only is not mutual")
	}
	r.ClientChain = []ids.Fingerprint{"c"}
	if !r.IsMutual() {
		t.Fatal("both chains should be mutual")
	}
	if r.ServerLeaf() != "s" || r.ClientLeaf() != "c" {
		t.Fatal("leaf accessors wrong")
	}
	if (&SSLRecord{}).ServerLeaf() != "" || (&SSLRecord{}).ClientLeaf() != "" {
		t.Fatal("empty leaves should be empty")
	}
}

func TestTSVRoundTripSSL(t *testing.T) {
	recs := []SSLRecord{
		{
			TS: date(2022, 5, 1), UID: "CaaaaaaaaaaaaaaaaA",
			OrigIP: "10.1.2.3", OrigPort: 51000, RespIP: "198.51.100.7", RespPort: 443,
			Version: "TLSv12", SNI: "health.virginia.edu", Established: true,
			ServerChain: []ids.Fingerprint{"f1", "f2"},
			ClientChain: []ids.Fingerprint{"f3"},
			Weight:      25,
		},
		{
			TS: date(2022, 5, 2), UID: "CbbbbbbbbbbbbbbbbB",
			OrigIP: "10.9.9.9", OrigPort: 40000, RespIP: "203.0.113.5", RespPort: 8883,
			Version: "TLSv13", SNI: "", Established: false,
			Weight: 1,
		},
	}
	var buf bytes.Buffer
	w := NewSSLWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#fields") {
		t.Fatal("missing header")
	}
	got, err := ReadSSL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].SNI != "health.virginia.edu" || !got[0].Established || got[0].Weight != 25 {
		t.Fatalf("row 0 = %+v", got[0])
	}
	if len(got[0].ServerChain) != 2 || got[0].ServerChain[1] != "f2" {
		t.Fatalf("chain = %v", got[0].ServerChain)
	}
	if got[1].SNI != "" || got[1].Established || len(got[1].ServerChain) != 0 {
		t.Fatalf("row 1 = %+v", got[1])
	}
	if !got[0].TS.Equal(date(2022, 5, 1)) {
		t.Fatalf("ts = %v", got[0].TS)
	}
}

func TestTSVRoundTripX509(t *testing.T) {
	cert := sampleCert(t, "00")
	rec := X509Record{TS: date(2022, 6, 1), ID: ids.NewFileID(cert.Fingerprint), Cert: cert}
	var buf bytes.Buffer
	w := NewX509Writer(&buf)
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadX509(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rows = %d", len(got))
	}
	c := got[0].Cert
	if c.SerialHex != "00" || c.IssuerOrg != "Globus Online" || c.IssuerCN != "FXP DCAU Cert" {
		t.Fatalf("issuer fields = %+v", c)
	}
	if c.SubjectCN != "user, with comma" {
		t.Fatalf("comma in CN did not round-trip: %q", c.SubjectCN)
	}
	if len(c.SANDNS) != 2 || c.SANDNS[0] != "a.example.com" {
		t.Fatalf("SAN = %v", c.SANDNS)
	}
	if !c.NotBefore.Equal(date(2023, 1, 1)) || !c.NotAfter.Equal(date(2023, 1, 15)) {
		t.Fatalf("validity = %v..%v", c.NotBefore, c.NotAfter)
	}
	if c.KeyAlg != certmodel.KeyECDSA || c.KeyBits != 256 {
		t.Fatalf("key = %v/%d", c.KeyAlg, c.KeyBits)
	}
	if c.Fingerprint != cert.Fingerprint {
		t.Fatal("fingerprint changed")
	}
}

func TestEscapeFieldRoundTrip(t *testing.T) {
	cases := []string{"plain", "tab\there", "comma,there", `back\slash`, "nl\nhere", ""}
	for _, c := range cases {
		got := unescapeField(escapeField(c))
		if got != c {
			t.Errorf("round trip %q -> %q", c, got)
		}
		if strings.ContainsAny(escapeField(c), "\t\n,") {
			t.Errorf("escaped form of %q still contains separators", c)
		}
	}
}

func TestReadSSLRejectsWrongPath(t *testing.T) {
	cert := sampleCert(t, "01")
	var buf bytes.Buffer
	w := NewX509Writer(&buf)
	if err := w.Write(&X509Record{TS: date(2022, 1, 1), ID: "F1", Cert: cert}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if _, err := ReadSSL(&buf); err == nil {
		t.Fatal("reading x509 log as ssl log should fail")
	}
}

func TestReadSSLRejectsBadFieldCount(t *testing.T) {
	in := "#path\tssl\nonly\tthree\tcols\n"
	if _, err := ReadSSL(strings.NewReader(in)); err == nil {
		t.Fatal("short row should fail")
	}
}

func TestDatasetMergeAndLookup(t *testing.T) {
	d1 := NewDataset()
	c1 := sampleCert(t, "0A")
	d1.AddCert(c1)
	d1.Conns = append(d1.Conns, SSLRecord{UID: "C1"})

	d2 := NewDataset()
	c2 := sampleCert(t, "0B")
	d2.AddCert(c2)
	// Duplicate of c1 must not overwrite.
	dup := *c1
	dup.SubjectCN = "changed"
	d2.AddCert(&dup)
	d2.Conns = append(d2.Conns, SSLRecord{UID: "C2"})

	d1.Merge(d2)
	if len(d1.Conns) != 2 || len(d1.Certs) != 2 {
		t.Fatalf("merge sizes: conns=%d certs=%d", len(d1.Conns), len(d1.Certs))
	}
	if d1.Cert(c1.Fingerprint).SubjectCN != "user, with comma" {
		t.Fatal("first observation should win")
	}
	if d1.Cert("missing") != nil {
		t.Fatal("missing cert should be nil")
	}
}

// End-to-end wire test: real DER certs → synthesized handshake bytes →
// analyzer → ssl/x509 records.
func TestAnalyzerWirePath(t *testing.T) {
	g, err := certmodel.NewGenerator(2)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := g.NewRootCA("Campus CA", "University", date(2020, 1, 1), date(2040, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	serverDER, err := g.IssueLeaf(ca, certmodel.Spec{
		SubjectCN: "vpn.virginia.edu", SANDNS: []string{"vpn.virginia.edu"},
		NotBefore: date(2022, 1, 1), NotAfter: date(2023, 1, 1), Server: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	clientDER, err := g.IssueLeaf(ca, certmodel.Spec{
		SubjectCN: "student0001",
		NotBefore: date(2022, 1, 1), NotAfter: date(2023, 1, 1), Client: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := ids.NewRNG(21)
	tr := tlswire.Synthesize(tlswire.TranscriptSpec{
		Version:     tlswire.VersionTLS12,
		SNI:         "vpn.virginia.edu",
		ServerChain: [][]byte{serverDER, ca.DER},
		ClientChain: [][]byte{clientDER},
		Established: true,
	}, rng)

	a := NewAnalyzer(ids.NewRNG(22))
	meta := ConnMeta{
		TS: date(2022, 6, 1), OrigIP: "10.0.0.5", OrigPort: 55123,
		RespIP: "128.143.1.1", RespPort: 443,
	}
	rec, err := a.AnalyzeStreams(meta, tr.ClientToServer, tr.ServerToClient)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.IsMutual() {
		t.Fatal("mutual handshake not detected")
	}
	if !rec.Established {
		t.Fatal("completed handshake not marked established")
	}
	if rec.SNI != "vpn.virginia.edu" || rec.Version != "TLSv12" {
		t.Fatalf("rec = %+v", rec)
	}
	if len(rec.ServerChain) != 2 || len(rec.ClientChain) != 1 {
		t.Fatalf("chains = %d/%d", len(rec.ServerChain), len(rec.ClientChain))
	}
	ds := a.Dataset()
	leaf := ds.Cert(rec.ServerLeaf())
	if leaf == nil || leaf.SubjectCN != "vpn.virginia.edu" {
		t.Fatalf("server leaf = %+v", leaf)
	}
	cl := ds.Cert(rec.ClientLeaf())
	if cl == nil || cl.SubjectCN != "student0001" {
		t.Fatalf("client leaf = %+v", cl)
	}
	if cl.IssuerOrg != "University" {
		t.Fatalf("client issuer = %q", cl.IssuerOrg)
	}
	if a.ParseErrors != 0 {
		t.Fatalf("parse errors = %d", a.ParseErrors)
	}
	// Certificates deduplicate on a second identical connection.
	tr2 := tlswire.Synthesize(tlswire.TranscriptSpec{
		Version: tlswire.VersionTLS12, SNI: "vpn.virginia.edu",
		ServerChain: [][]byte{serverDER, ca.DER}, ClientChain: [][]byte{clientDER},
		Established: true,
	}, rng)
	if _, err := a.AnalyzeStreams(meta, tr2.ClientToServer, tr2.ServerToClient); err != nil {
		t.Fatal(err)
	}
	if len(a.X509) != 3 {
		t.Fatalf("x509 records = %d, want 3 (dedup)", len(a.X509))
	}
	if len(a.SSL) != 2 {
		t.Fatalf("ssl records = %d", len(a.SSL))
	}
}

func TestAnalyzerTLS13Opacity(t *testing.T) {
	rng := ids.NewRNG(31)
	tr := tlswire.Synthesize(tlswire.TranscriptSpec{
		Version:     tlswire.VersionTLS13,
		SNI:         "cloud.example.com",
		ServerChain: [][]byte{[]byte("hidden")},
		ClientChain: [][]byte{[]byte("hidden2")},
		Established: true,
	}, rng)
	a := NewAnalyzer(ids.NewRNG(32))
	rec, err := a.AnalyzeStreams(ConnMeta{TS: date(2023, 1, 1)}, tr.ClientToServer, tr.ServerToClient)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != "TLSv13" {
		t.Fatalf("version = %q", rec.Version)
	}
	if len(rec.ServerChain) != 0 || len(rec.ClientChain) != 0 {
		t.Fatal("TLS 1.3 certs must be invisible to the monitor (§3.3)")
	}
	if !rec.Established {
		t.Fatal("1.3 connection should be established")
	}
	if rec.IsMutual() {
		t.Fatal("mutuality is unknowable for 1.3; must not be flagged")
	}
}

func TestAnalyzerRejectsNonTLS(t *testing.T) {
	a := NewAnalyzer(ids.NewRNG(1))
	_, err := a.AnalyzeStreams(ConnMeta{}, []byte("SSH-2.0-OpenSSH_9.0\r\n"), nil)
	if !errors.Is(err, ErrNotTLS) {
		t.Fatalf("want ErrNotTLS, got %v", err)
	}
}

func TestAnalyzerFailedHandshake(t *testing.T) {
	rng := ids.NewRNG(5)
	tr := tlswire.Synthesize(tlswire.TranscriptSpec{
		Version: tlswire.VersionTLS12, SNI: "x.com",
		ServerChain: [][]byte{[]byte("junk-der")}, ClientChain: [][]byte{[]byte("c")},
		Established: false,
	}, rng)
	a := NewAnalyzer(ids.NewRNG(6))
	rec, err := a.AnalyzeStreams(ConnMeta{}, tr.ClientToServer, tr.ServerToClient)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Established {
		t.Fatal("aborted handshake marked established")
	}
	// The junk server DER still fingerprints into the chain but produced
	// no x509 record.
	if len(rec.ServerChain) != 1 {
		t.Fatalf("server chain = %v", rec.ServerChain)
	}
	if a.ParseErrors != 1 {
		t.Fatalf("parse errors = %d", a.ParseErrors)
	}
	if len(a.X509) != 0 {
		t.Fatal("junk DER must not produce x509 records")
	}
}

func TestLoadDataset(t *testing.T) {
	cert := sampleCert(t, "02")
	var sslBuf, x509Buf bytes.Buffer
	sw := NewSSLWriter(&sslBuf)
	rec := SSLRecord{
		TS: date(2022, 5, 1), UID: "Cx", OrigIP: "10.0.0.1", RespIP: "1.2.3.4",
		RespPort: 443, Version: "TLSv12", Established: true,
		ServerChain: []ids.Fingerprint{cert.Fingerprint}, Weight: 3,
	}
	if err := sw.Write(&rec); err != nil {
		t.Fatal(err)
	}
	sw.Flush()
	xw := NewX509Writer(&x509Buf)
	if err := xw.Write(&X509Record{TS: date(2022, 5, 1), ID: "F1", Cert: cert}); err != nil {
		t.Fatal(err)
	}
	xw.Flush()
	ds, err := LoadDataset(&sslBuf, &x509Buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Conns) != 1 || len(ds.Certs) != 1 {
		t.Fatalf("dataset sizes wrong: %d/%d", len(ds.Conns), len(ds.Certs))
	}
	if got := ds.Cert(ds.Conns[0].ServerLeaf()); got == nil || got.SerialHex != "02" {
		t.Fatal("join via fingerprint failed")
	}
}
