package zeek

import (
	"bytes"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

// internTable deduplicates the high-repetition field values of a Zeek log
// — IPs, TLS version names, SNIs, certificate fingerprints, whole chain
// columns, and issuer/subject DNs. A busy sensor repeats the same few
// thousand values across millions of rows; materializing each occurrence
// as a fresh string was most of the parser's allocation budget and, worse,
// most of the retained heap the GC re-scans every cycle.
//
// Lookups key the map by string(b) directly, which the compiler compiles
// without copying b, so a warm table costs zero allocations per field.
// Each value class is capped (internCap bytes) so an adversarial log full
// of unique values degrades to plain per-row copies instead of growing
// the table without bound; the tailers keep one table across polls, the
// batch readers one per call.
//
// Interned values are shared between records. That is safe because every
// parsed field is immutable by contract — records hand out their strings
// and chain slices read-only (see SSLRecord).
type internTable struct {
	strs   map[string]string
	chains map[string][]ids.Fingerprint
	dns    map[string]dnParts
	bytes  int
	// scratch backs unescaping so a field with escapes still interns
	// without an intermediate string.
	scratch []byte
}

// dnParts is a parsed DN column: certmodel.ParseDN of the unescaped
// value. DN strings are long and extremely repetitive (one issuer signs
// thousands of certificates), so the parse itself is memoized, not just
// the storage.
type dnParts struct{ cn, org string }

// internCap bounds the bytes retained per value class.
const internCap = 1 << 20

func newInternTable() *internTable {
	return &internTable{
		strs:   make(map[string]string, 64),
		chains: make(map[string][]ids.Fingerprint, 64),
		dns:    make(map[string]dnParts, 64),
	}
}

// str returns b as a string, shared with every previous occurrence of
// the same bytes. Nil tables pass through with a plain copy.
func (t *internTable) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if t == nil {
		return string(b)
	}
	if s, ok := t.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	if t.bytes+len(s) <= internCap {
		t.strs[s] = s
		t.bytes += len(s)
	}
	return s
}

// unescaped is str over the hex-unescaped value of b. The common case —
// no escape sequences — interns the raw bytes directly.
func (t *internTable) unescaped(b []byte) string {
	if !hasEscape(b) {
		return t.str(b)
	}
	if t == nil {
		return string(unescapeAppend(nil, b))
	}
	t.scratch = unescapeAppend(t.scratch[:0], b)
	return t.str(t.scratch)
}

// fps decodes a chain-fingerprint column, sharing the whole decoded
// slice across rows presenting the same chain. Chain slices are
// read-only downstream (records only subslice them), so sharing is safe.
func (t *internTable) fps(b []byte) []ids.Fingerprint {
	if isEmptyCol(b) {
		return nil
	}
	if t != nil {
		if c, ok := t.chains[string(b)]; ok {
			return c
		}
	}
	col := b
	var out []ids.Fingerprint
	for {
		i := bytes.IndexByte(b, ',')
		if i < 0 {
			out = append(out, ids.Fingerprint(t.str(b)))
			break
		}
		out = append(out, ids.Fingerprint(t.str(b[:i])))
		b = b[i+1:]
	}
	if t != nil && t.bytes+len(col) <= internCap {
		t.chains[string(col)] = out
		t.bytes += len(col)
	}
	return out
}

// dn decodes a DN column (issuer or subject) into its CN and O parts,
// memoizing the unescape + certmodel.ParseDN by the raw column bytes.
func (t *internTable) dn(b []byte) (cn, org string) {
	if isUnset(b) || len(b) == 0 {
		return certmodel.ParseDN("")
	}
	if t != nil {
		if p, ok := t.dns[string(b)]; ok {
			return p.cn, p.org
		}
	}
	raw := string(b)
	cn, org = certmodel.ParseDN(unescapeField(raw))
	if t != nil && t.bytes+len(raw) <= internCap {
		t.dns[raw] = dnParts{cn: cn, org: org}
		t.bytes += len(raw)
	}
	return cn, org
}
