package zeek

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestQuarantineByteCap pins the unbounded-growth fix: under a
// malformed-row storm a capped quarantine stops writing at the cap,
// counts every overflow drop, and keeps the file bounded — while the
// row tally (Count) still sees every rejection.
func TestQuarantineByteCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.log")
	q, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	const cap = 400
	q.SetMaxBytes(cap)
	reg := metrics.New()
	q.Instrument(reg)

	const storm = 200
	for i := 0; i < storm; i++ {
		q.Record("ssl", &RowError{Reason: RejectFieldCount, Line: int64(i + 1),
			Raw: "bad\trow\twith\tsome\tbulk"})
	}
	if err := q.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > cap {
		t.Fatalf("quarantine grew to %d bytes past the %d cap", fi.Size(), cap)
	}
	if fi.Size() == 0 {
		t.Fatal("nothing written below the cap")
	}
	if q.Bytes() != fi.Size() {
		t.Errorf("Bytes() = %d, file is %d", q.Bytes(), fi.Size())
	}
	if q.Count() != storm {
		t.Errorf("Count() = %d, want %d (dropped rows still count as rejections)", q.Count(), storm)
	}
	written := q.Count() - q.Dropped()
	if q.Dropped() == 0 || written == 0 {
		t.Fatalf("dropped %d / written %d: the storm must both write and drop", q.Dropped(), written)
	}

	// The overflow counter and byte gauge are live on the registry.
	if v := reg.Counter(QuarantineDroppedMetric, "").Value(); v != q.Dropped() {
		t.Errorf("%s = %d, want %d", QuarantineDroppedMetric, v, q.Dropped())
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{QuarantineDroppedMetric, QuarantineBytesMetric} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	// Lifting the cap resumes writing.
	q.SetMaxBytes(0)
	q.Record("ssl", &RowError{Reason: RejectWeight, Line: 999, Raw: "late\trow"})
	if fi2, err := os.Stat(path); err != nil || fi2.Size() <= fi.Size() {
		t.Errorf("uncapped record did not grow the file (%v, %d -> %d)", err, fi.Size(), fi2.Size())
	}
}

// TestQuarantineCapCountsExistingFile: reopening an existing quarantine
// seeds the byte accounting with the file's size, so a restart cannot
// reset the cap and double the disk footprint.
func TestQuarantineCapCountsExistingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.log")
	q, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q.Record("x509", &RowError{Reason: RejectTimestamp, Line: int64(i + 1), Raw: "stale"})
	}
	q.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	q2, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if q2.Bytes() != fi.Size() {
		t.Fatalf("reopened Bytes() = %d, want existing size %d", q2.Bytes(), fi.Size())
	}
	// A cap at the current size drops everything immediately.
	q2.SetMaxBytes(fi.Size())
	q2.Record("x509", &RowError{Reason: RejectTimestamp, Line: 11, Raw: "stale"})
	if q2.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", q2.Dropped())
	}
	if fi2, _ := os.Stat(path); fi2.Size() != fi.Size() {
		t.Errorf("capped reopen still grew the file: %d -> %d", fi.Size(), fi2.Size())
	}
}
