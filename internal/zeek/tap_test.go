package zeek

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

// tapHarness stands up: a real mutual-TLS backend, a Tap in front of it,
// and returns a dial function plus the collected records.
type tapHarness struct {
	tapAddr string
	cliCfg  *tls.Config

	mu      sync.Mutex
	records []*SSLRecord
	errs    []error

	cancel context.CancelFunc
	done   chan struct{}
}

func newTapHarness(t *testing.T) *tapHarness {
	t.Helper()
	gen, err := certmodel.NewGenerator(3)
	if err != nil {
		t.Fatal(err)
	}
	nb, na := time.Now().Add(-time.Hour), time.Now().Add(24*time.Hour)
	ca, err := gen.NewRootCA("Tap Root", "Tap Org", nb, na)
	if err != nil {
		t.Fatal(err)
	}
	serverDER, err := gen.IssueLeaf(ca, certmodel.Spec{
		SubjectCN: "tap.example.com", SANDNS: []string{"tap.example.com"},
		NotBefore: nb, NotAfter: na, Server: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	serverKey := gen.LastKey()
	clientDER, err := gen.IssueLeaf(ca, certmodel.Spec{
		SubjectCN: "tap-client", NotBefore: nb, NotAfter: na, Client: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	clientKey := gen.LastKey()

	pool := x509.NewCertPool()
	pool.AddCert(ca.Cert)

	// Backend: an echo server requiring client certs over TLS 1.2.
	backendLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backendLn.Close() })
	srvCfg := &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{serverDER, ca.DER}, PrivateKey: serverKey}},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    pool,
		MinVersion:   tls.VersionTLS12,
		MaxVersion:   tls.VersionTLS12,
	}
	go func() {
		for {
			conn, err := backendLn.Accept()
			if err != nil {
				return
			}
			go func() {
				s := tls.Server(conn, srvCfg)
				defer s.Close()
				if err := s.Handshake(); err != nil {
					return
				}
				io.Copy(s, s) //nolint:errcheck — echo until EOF
			}()
		}
	}()

	h := &tapHarness{done: make(chan struct{})}
	tap := &Tap{
		Backend:  backendLn.Addr().String(),
		Analyzer: NewAnalyzer(ids.NewRNG(55)),
		OnRecord: func(r *SSLRecord) {
			h.mu.Lock()
			h.records = append(h.records, r)
			h.mu.Unlock()
		},
		OnError: func(err error) {
			h.mu.Lock()
			h.errs = append(h.errs, err)
			h.mu.Unlock()
		},
	}
	tapLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	go func() {
		defer close(h.done)
		tap.Serve(ctx, tapLn) //nolint:errcheck
	}()
	t.Cleanup(func() {
		cancel()
		<-h.done
	})

	h.tapAddr = tapLn.Addr().String()
	h.cliCfg = &tls.Config{
		RootCAs:      pool,
		Certificates: []tls.Certificate{{Certificate: [][]byte{clientDER, ca.DER}, PrivateKey: clientKey}},
		ServerName:   "tap.example.com",
		MinVersion:   tls.VersionTLS12,
		MaxVersion:   tls.VersionTLS12,
	}
	return h
}

func (h *tapHarness) snapshot() ([]*SSLRecord, []error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*SSLRecord(nil), h.records...), append([]error(nil), h.errs...)
}

func (h *tapHarness) waitRecords(t *testing.T, n int) []*SSLRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		recs, _ := h.snapshot()
		if len(recs) >= n {
			return recs
		}
		time.Sleep(10 * time.Millisecond)
	}
	recs, errs := h.snapshot()
	t.Fatalf("timed out waiting for %d records (have %d, errs %v)", n, len(recs), errs)
	return nil
}

func TestTapCapturesMutualTLS(t *testing.T) {
	h := newTapHarness(t)

	conn, err := tls.Dial("tcp", h.tapAddr, h.cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "ping through the tap\n")
	buf := make([]byte, 32)
	if _, err := conn.Read(buf); err != nil && err != io.EOF {
		t.Fatalf("echo read: %v", err)
	}
	conn.Close()

	recs := h.waitRecords(t, 1)
	rec := recs[0]
	if !rec.IsMutual() {
		t.Fatal("tap missed mutual authentication")
	}
	if !rec.Established {
		t.Fatal("tap missed establishment")
	}
	if rec.SNI != "tap.example.com" {
		t.Fatalf("SNI = %q", rec.SNI)
	}
	if rec.Version != "TLSv12" {
		t.Fatalf("version = %q", rec.Version)
	}
	if rec.OrigIP == "" || rec.RespIP == "" {
		t.Fatalf("endpoints missing: %+v", rec)
	}
}

func TestTapMultipleConnections(t *testing.T) {
	h := newTapHarness(t)
	const n = 5
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := tls.Dial("tcp", h.tapAddr, h.cliCfg)
			if err != nil {
				return
			}
			fmt.Fprintf(conn, "hello\n")
			conn.Close()
		}()
	}
	wg.Wait()
	recs := h.waitRecords(t, n)
	for _, r := range recs {
		if !r.IsMutual() {
			t.Fatal("concurrent capture lost mutuality")
		}
	}
}

func TestTapReportsNonTLS(t *testing.T) {
	h := newTapHarness(t)
	raw, err := net.Dial("tcp", h.tapAddr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(raw, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	raw.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, errs := h.snapshot()
		if len(errs) > 0 {
			return // non-TLS correctly reported as an analysis error
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("non-TLS traffic produced no error")
}

func TestTapBackendDown(t *testing.T) {
	var errs []error
	var mu sync.Mutex
	tap := &Tap{
		Backend:  "127.0.0.1:1", // nothing listens here
		Analyzer: NewAnalyzer(ids.NewRNG(1)),
		OnError: func(err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		},
		DialTimeout: 200 * time.Millisecond,
	}
	c1, c2 := net.Pipe()
	defer c2.Close()
	done := make(chan struct{})
	go func() {
		tap.ServeConn(c1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("ServeConn hung on dead backend")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) == 0 {
		t.Fatal("dead backend produced no error")
	}
}
