// Package zeek reimplements the slice of Zeek the paper depends on: the
// ssl.log and x509.log record types, their tab-separated log format, a
// passive analyzer that turns captured TLS byte streams into those records
// (via dynamic protocol detection, so TLS is found on any port), and the
// join between the two logs.
//
// The paper's §3.1: "SSL.log provides detailed information of TLS
// connections, including the IP, port, the server name (SNI) of the
// connection, the certificate chain information, and the success of
// connection establishment. … Each certificate in X509.log is linked to
// SSL.log through unique IDs."
package zeek

import (
	"strings"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

// SSLRecord is one row of ssl.log: a single TLS connection observed at the
// border.
type SSLRecord struct {
	// TS is when the connection was first seen.
	TS time.Time
	// UID is the Zeek connection identifier.
	UID ids.UID
	// Originator (client) and responder (server) endpoints.
	OrigIP   string
	OrigPort uint16
	RespIP   string
	RespPort uint16
	// Version is the negotiated TLS version string ("TLSv12").
	Version string
	// SNI is the server_name from the ClientHello ("" when absent).
	SNI string
	// Established reports handshake completion.
	Established bool
	// ServerChain holds fingerprints of the server-presented chain, leaf
	// first; ClientChain likewise for the client. A connection with both
	// non-empty is a mutual-TLS connection (§3.2.1).
	ServerChain []ids.Fingerprint
	ClientChain []ids.Fingerprint
	// JA3/JA4 are ClientHello fingerprint columns ("" = not recorded).
	// They ride the extended 14-field ssl.log schema; the legacy 12-field
	// schema reads back with both empty. omitempty keeps snapshot and
	// spill encodings byte-identical for fingerprint-free records.
	JA3 string `json:",omitempty"`
	JA4 string `json:",omitempty"`
	// Weight is the number of identical connections this row stands for.
	// The wire path always writes 1; the bulk path aggregates (DESIGN.md
	// §5). Percentages are therefore invariant to the scale knob.
	Weight int64
}

// IsMutual reports whether both endpoints presented certificates.
func (r *SSLRecord) IsMutual() bool {
	return len(r.ServerChain) > 0 && len(r.ClientChain) > 0
}

// ServerLeaf returns the server leaf fingerprint ("" when no chain).
func (r *SSLRecord) ServerLeaf() ids.Fingerprint {
	if len(r.ServerChain) == 0 {
		return ""
	}
	return r.ServerChain[0]
}

// ClientLeaf returns the client leaf fingerprint ("" when no chain).
func (r *SSLRecord) ClientLeaf() ids.Fingerprint {
	if len(r.ClientChain) == 0 {
		return ""
	}
	return r.ClientChain[0]
}

// X509Record is one row of x509.log: a certificate seen in some
// connection, keyed by fingerprint.
type X509Record struct {
	// TS is when this certificate was first observed.
	TS time.Time
	// ID links the record to ssl.log chains (Zeek file ID style).
	ID ids.FileID
	// Cert is the parsed certificate.
	Cert *certmodel.CertInfo
}

// Dataset is the joined view the analyses consume: all connections plus a
// fingerprint-indexed certificate table.
type Dataset struct {
	Conns []SSLRecord
	Certs map[ids.Fingerprint]*certmodel.CertInfo
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{Certs: make(map[ids.Fingerprint]*certmodel.CertInfo)}
}

// AddCert indexes a certificate, keeping the first observation.
func (d *Dataset) AddCert(c *certmodel.CertInfo) {
	if _, ok := d.Certs[c.Fingerprint]; !ok {
		d.Certs[c.Fingerprint] = c
	}
}

// Cert resolves a fingerprint (nil when the certificate was never logged —
// possible for truncated captures).
func (d *Dataset) Cert(fp ids.Fingerprint) *certmodel.CertInfo { return d.Certs[fp] }

// Merge appends other into d.
func (d *Dataset) Merge(other *Dataset) {
	d.Conns = append(d.Conns, other.Conns...)
	for _, c := range other.Certs {
		d.AddCert(c)
	}
}

// joinKey renders chain fingerprints for the TSV cert_chain_fps column.
func joinFPs(fps []ids.Fingerprint) string {
	if len(fps) == 0 {
		return setEmpty
	}
	parts := make([]string, len(fps))
	for i, fp := range fps {
		parts[i] = string(fp)
	}
	return strings.Join(parts, ",")
}

func splitFPs(s string) []ids.Fingerprint {
	if s == setEmpty || s == unsetField || s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]ids.Fingerprint, len(parts))
	for i, p := range parts {
		out[i] = ids.Fingerprint(p)
	}
	return out
}
