package zeek

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// corpusBytes loads the first []byte argument of one checked-in fuzz
// corpus file ("go test fuzz v1" format).
func corpusBytes(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) < 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a fuzz corpus file", path)
	}
	lit := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	s, err := strconv.Unquote(lit)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return []byte(s)
}

// TestFuzzCorpusCoversEveryReason pins the seed corpora to the
// quarantine taxonomy: every parse-level rejection reason must be
// triggered by at least one checked-in seed, so the fuzzers (and the CI
// smoke run over the same corpora) exercise each branch of the
// malformed-row handling from the first execution. RejectOversizedLine
// is a tailer-only condition with no batch-parser analogue; its
// dedicated regression test is TestTailOversizedLinePermissive.
func TestFuzzCorpusCoversEveryReason(t *testing.T) {
	reg := metrics.New()
	feed := func(dir, header string, read func(string, Options) error) {
		paths, err := filepath.Glob(filepath.Join("testdata", "fuzz", dir, "*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("no corpus files under testdata/fuzz/%s", dir)
		}
		for _, p := range paths {
			input := header + string(corpusBytes(t, p))
			if err := read(input, Options{Metrics: reg}); err != nil {
				t.Fatalf("%s: permissive read failed: %v", p, err)
			}
		}
	}
	feed("FuzzParseSSLRow", "#path\tssl\n", func(in string, o Options) error {
		return ForEachSSLWith(strings.NewReader(in), o, func(*SSLRecord) error { return nil })
	})
	feed("FuzzParseX509Row", "#path\tx509\n", func(in string, o Options) error {
		return ForEachX509With(strings.NewReader(in), o, func(*X509Record) error { return nil })
	})

	_, byReason := RejectTotals(reg)
	covered := map[Reason]bool{}
	for key := range byReason {
		if _, reason, ok := strings.Cut(key, "/"); ok {
			covered[Reason(reason)] = true
		}
	}
	var missing []string
	for _, r := range Reasons {
		if r == RejectOversizedLine {
			continue
		}
		if !covered[r] {
			missing = append(missing, string(r))
		}
	}
	if len(missing) > 0 {
		t.Fatalf("no fuzz seed triggers reason(s) %v; add corpus files under testdata/fuzz/", missing)
	}
}

// TestQuarantineFile pins the quarantine sink's on-disk format: a
// versioned header and one escaped TSV line per rejected row, safe to
// re-read line by line even when the raw row contained tabs or newlines.
func TestQuarantineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.log")
	q, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Quarantine: q, Metrics: metrics.New()}

	input := "#path\tssl\nnot\tenough\tfields\n" +
		"NaN\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\ta.com\tT\t-\t-\t1\n"
	var rows int
	if err := ForEachSSLWith(strings.NewReader(input), o, func(*SSLRecord) error {
		rows++
		return nil
	}); err != nil {
		t.Fatalf("permissive read: %v", err)
	}
	if rows != 0 || q.Count() != 2 {
		t.Fatalf("rows = %d, quarantined = %d; want 0 and 2", rows, q.Count())
	}
	if err := q.Err(); err != nil {
		t.Fatalf("quarantine sink error: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	want := []string{
		"#quarantine\tv1",
		"#fields\tsource\tline\treason\traw",
		fmt.Sprintf("ssl\t2\t%s\t%s", RejectFieldCount, escapeField("not\tenough\tfields")),
		fmt.Sprintf("ssl\t3\t%s\t%s", RejectTimestamp,
			escapeField("NaN\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\ta.com\tT\t-\t-\t1")),
	}
	if len(lines) != len(want) {
		t.Fatalf("quarantine has %d lines, want %d:\n%s", len(lines), len(want), raw)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("quarantine line %d = %q, want %q", i, lines[i], want[i])
		}
	}

	total, byReason := RejectTotals(o.Metrics)
	if total != 2 {
		t.Fatalf("RejectTotals = %d, want 2", total)
	}
	if byReason["ssl/"+string(RejectFieldCount)] != 1 || byReason["ssl/"+string(RejectTimestamp)] != 1 {
		t.Fatalf("byReason = %v", byReason)
	}
}
