package zeek

import (
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Tap is an inline passive monitor: a TCP pass-through proxy that relays
// bytes between a client and a backend unchanged while capturing both
// directions, then runs the TLS analyzer over the captured streams when
// the connection closes. It is the deployable version of the border
// mirror the paper's collection used (§3.1) — cmd/tlstap wires it to
// flags, and the test suite drives real crypto/tls mutual handshakes
// through it.
type Tap struct {
	// Backend is the upstream address ("host:port") connections are
	// relayed to.
	Backend string
	// Analyzer receives the captured streams. It is guarded internally;
	// multiple proxied connections may complete concurrently.
	Analyzer *Analyzer
	// OnRecord, when set, is invoked for every analyzed connection.
	OnRecord func(*SSLRecord)
	// OnError, when set, receives per-connection analysis errors (e.g.
	// non-TLS traffic relayed through the tap).
	OnError func(error)
	// DialTimeout bounds the backend dial (default 5s).
	DialTimeout time.Duration

	mu sync.Mutex
	wg sync.WaitGroup
}

// Serve accepts connections from ln until ctx is cancelled or the
// listener fails. It blocks; cancel ctx to stop. Outstanding relays are
// drained before Serve returns.
func (t *Tap) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-done:
		}
	}()
	var retErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				retErr = ctx.Err()
			} else {
				retErr = err
			}
			break
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.ServeConn(conn)
		}()
	}
	t.wg.Wait()
	if errors.Is(retErr, net.ErrClosed) || errors.Is(retErr, context.Canceled) {
		return nil
	}
	return retErr
}

// ServeConn relays a single accepted connection to the backend, capturing
// both directions, and analyzes the capture when both sides finish.
func (t *Tap) ServeConn(client net.Conn) {
	defer client.Close()
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	backend, err := net.DialTimeout("tcp", t.Backend, timeout)
	if err != nil {
		t.reportErr(err)
		return
	}
	defer backend.Close()

	start := time.Now()
	var c2s, s2c capture
	var wg sync.WaitGroup
	wg.Add(2)
	go relay(&wg, backend, client, &c2s) // client -> backend
	go relay(&wg, client, backend, &s2c) // backend -> client
	wg.Wait()

	meta := ConnMeta{TS: start}
	if addr, ok := addrPort(client.RemoteAddr()); ok {
		meta.OrigIP, meta.OrigPort = addr.Addr().String(), addr.Port()
	}
	if addr, ok := addrPort(backend.RemoteAddr()); ok {
		meta.RespIP, meta.RespPort = addr.Addr().String(), addr.Port()
	}

	t.mu.Lock()
	rec, err := t.Analyzer.AnalyzeStreams(meta, c2s.bytes(), s2c.bytes())
	t.mu.Unlock()
	if err != nil {
		t.reportErr(err)
		return
	}
	if t.OnRecord != nil {
		t.OnRecord(rec)
	}
}

func (t *Tap) reportErr(err error) {
	if t.OnError != nil {
		t.OnError(err)
	}
}

// capture is a concurrency-safe byte sink.
type capture struct {
	mu  sync.Mutex
	buf []byte
}

func (c *capture) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.buf = append(c.buf, p...)
	c.mu.Unlock()
	return len(p), nil
}

func (c *capture) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf
}

// relay copies src→dst, teeing into cap, and half-closes dst when src
// finishes so TLS close_notify sequences propagate.
func relay(wg *sync.WaitGroup, dst, src net.Conn, cap *capture) {
	defer wg.Done()
	io.Copy(io.MultiWriter(dst, cap), src) //nolint:errcheck — relay best-effort
	if hc, ok := dst.(interface{ CloseWrite() error }); ok {
		hc.CloseWrite() //nolint:errcheck
	} else {
		dst.Close()
	}
}

func addrPort(a net.Addr) (netip.AddrPort, bool) {
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		return netip.AddrPort{}, false
	}
	ap := tcp.AddrPort()
	return ap, ap.IsValid()
}
