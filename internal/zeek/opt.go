package zeek

import "repro/internal/metrics"

// Opt is a functional option for the streaming readers: ForEachSSL,
// ForEachX509, and LoadDataset apply them over the strict default
// (fail-stop on the first malformed row), so
//
//	zeek.ForEachSSL(r, fn)                                 // strict
//	zeek.ForEachSSL(r, fn, zeek.Permissive())              // skip bad rows
//	zeek.ForEachSSL(r, fn, zeek.Permissive(),
//	    zeek.WithQuarantine(q), zeek.WithMetrics(reg))     // and capture them
//
// replaces the ForEachSSLWith(r, Options{...}, fn) struct-threading form.
type Opt func(*Options)

// Strict selects fail-stop parsing: the first malformed row aborts with
// an error describing it. This is the readers' default; the option
// exists to state it explicitly or to override an earlier Permissive.
func Strict() Opt { return func(o *Options) { o.Strict = true } }

// Permissive selects quarantine parsing: malformed rows are skipped
// (counted and captured via WithMetrics/WithQuarantine) and the rest of
// the log still loads.
func Permissive() Opt { return func(o *Options) { o.Strict = false } }

// WithQuarantine captures each rejected row's raw line into q.
func WithQuarantine(q *Quarantine) Opt { return func(o *Options) { o.Quarantine = q } }

// WithMetrics publishes per-(file, reason) rejection counters into reg
// (the zeek_rows_rejected_total family).
func WithMetrics(reg *metrics.Registry) Opt { return func(o *Options) { o.Metrics = reg } }

// WithBatchSize sets the record-batch granularity of the batch readers
// (ForEachSSLBatch, ForEachX509Batch). Values < 1 keep DefaultBatchSize.
func WithBatchSize(n int) Opt { return func(o *Options) { o.BatchSize = n } }

// resolveOpts folds opts over the readers' strict default.
func resolveOpts(opts []Opt) Options {
	o := Options{Strict: true}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
