package zeek

// The reference parser: the string-based row decoding exactly as it
// existed before the zero-copy rework, kept test-only. The fuzz
// harnesses run both implementations over the same rows and require
// byte-for-byte identical records and an identical quarantine taxonomy
// — the rework must be a pure representation change, never a semantic
// one.

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

func refParseSSLCols(cols []string) (SSLRecord, error) {
	ts, err := refParseTS(cols[0])
	if err != nil {
		return SSLRecord{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	op, err := refParsePort(cols[3])
	if err != nil {
		return SSLRecord{}, rowErrf(RejectPort, "orig port: %v", err)
	}
	rp, err := refParsePort(cols[5])
	if err != nil {
		return SSLRecord{}, rowErrf(RejectPort, "resp port: %v", err)
	}
	w, err := strconv.ParseInt(cols[11], 10, 64)
	if err != nil {
		return SSLRecord{}, rowErrf(RejectWeight, "weight: %v", err)
	}
	if w < 1 {
		return SSLRecord{}, rowErrf(RejectWeight, "weight %d < 1", w)
	}
	return SSLRecord{
		TS:          ts,
		UID:         ids.UID(cols[1]),
		OrigIP:      refUnsetOr(cols[2]),
		OrigPort:    op,
		RespIP:      refUnsetOr(cols[4]),
		RespPort:    rp,
		Version:     refUnsetOr(cols[6]),
		SNI:         unescapeField(refUnsetOr(cols[7])),
		Established: cols[8] == "T",
		ServerChain: refSplitFPs(cols[9]),
		ClientChain: refSplitFPs(cols[10]),
		Weight:      w,
	}, nil
}

func refParseX509Cols(cols []string) (X509Record, error) {
	ts, err := refParseTS(cols[0])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	nb, err := refParseTS(cols[11])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	na, err := refParseTS(cols[12])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	ver, err := strconv.Atoi(cols[3])
	if err != nil || ver < 0 {
		return X509Record{}, rowErrf(RejectCertVersion, "cert version %q", cols[3])
	}
	bits, err := strconv.Atoi(cols[14])
	if err != nil || bits < 0 {
		return X509Record{}, rowErrf(RejectKeyLength, "key length %q", cols[14])
	}
	icn, iorg := certmodel.ParseDN(unescapeField(refUnsetOr(cols[5])))
	scn, sorg := certmodel.ParseDN(unescapeField(refUnsetOr(cols[6])))
	cert := &certmodel.CertInfo{
		Fingerprint: ids.Fingerprint(cols[2]),
		Version:     ver,
		SerialHex:   refUnsetOr(cols[4]),
		IssuerCN:    icn,
		IssuerOrg:   iorg,
		SubjectCN:   scn,
		SubjectOrg:  sorg,
		SANDNS:      refSplitStrs(cols[7]),
		SANIP:       refSplitStrs(cols[8]),
		SANEmail:    refSplitStrs(cols[9]),
		SANURI:      refSplitStrs(cols[10]),
		NotBefore:   nb,
		NotAfter:    na,
		KeyAlg:      refParseKeyAlg(cols[13]),
		KeyBits:     bits,
		SelfSigned:  cols[15] == "T",
	}
	return X509Record{TS: ts, ID: ids.FileID(cols[1]), Cert: cert}, nil
}

func refParseTS(s string) (time.Time, error) {
	return parseTS([]byte(s))
}

func refParsePort(s string) (uint16, error) {
	p, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 65535 {
		return 0, errPortRange(p)
	}
	return uint16(p), nil
}

func errPortRange(p int) error { return rowErrf(RejectPort, "port %d outside [0, 65535]", p).Err }

func refParseKeyAlg(s string) certmodel.KeyAlg {
	switch s {
	case "rsa":
		return certmodel.KeyRSA
	case "ecdsa":
		return certmodel.KeyECDSA
	default:
		return certmodel.KeyUnknown
	}
}

func refUnsetOr(s string) string {
	if s == unsetField {
		return ""
	}
	return s
}

func refSplitFPs(s string) []ids.Fingerprint {
	if s == setEmpty || s == unsetField || s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]ids.Fingerprint, len(parts))
	for i, p := range parts {
		out[i] = ids.Fingerprint(p)
	}
	return out
}

func refSplitStrs(s string) []string {
	if s == setEmpty || s == unsetField || s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = unescapeField(parts[i])
	}
	return parts
}
