package zeek

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/tlswire"
)

// ConnMeta is the transport-layer context for one captured connection.
type ConnMeta struct {
	TS       time.Time
	OrigIP   string
	OrigPort uint16
	RespIP   string
	RespPort uint16
}

// Analyzer is the passive monitor: it consumes captured byte streams and
// produces ssl.log / x509.log records. It is the wire-path equivalent of
// Zeek's SSL analyzer with dynamic protocol detection — it does not care
// what port the traffic arrived on, only whether the bytes sniff as TLS.
type Analyzer struct {
	rng *ids.RNG

	// SSL collects connection records; X509 collects first-seen
	// certificate records (deduplicated by fingerprint, as Zeek's
	// known-certs suppression would).
	SSL  []SSLRecord
	X509 []X509Record

	seen map[ids.Fingerprint]bool
	// ParseErrors counts certificates that appeared on the wire but did
	// not parse as DER; their fingerprints still appear in chains.
	ParseErrors int
}

// NewAnalyzer creates an analyzer whose UIDs come from rng.
func NewAnalyzer(rng *ids.RNG) *Analyzer {
	return &Analyzer{rng: rng, seen: make(map[ids.Fingerprint]bool)}
}

// ErrNotTLS re-exports the wire-level sniff failure.
var ErrNotTLS = tlswire.ErrNotTLS

// sideResult is what one direction of the capture yields.
type sideResult struct {
	sni        string
	ja3        string // ClientHello fingerprints (client side only)
	ja4        string
	version    uint16 // ServerHello-negotiated (server side only)
	chain      [][]byte
	sawCertReq bool
	encrypted  bool // the stream progressed into encrypted data
}

// AnalyzeStreams processes one connection's two directional streams
// (originator→responder and responder→originator) and appends the
// resulting records. It returns the ssl.log record for convenience.
func (a *Analyzer) AnalyzeStreams(meta ConnMeta, c2s, s2c []byte) (*SSLRecord, error) {
	if !tlswire.SniffTLS(c2s) {
		return nil, ErrNotTLS
	}
	client, err := parseSide(c2s, true)
	if err != nil {
		return nil, fmt.Errorf("zeek: client stream: %w", err)
	}
	server, err := parseSide(s2c, false)
	if err != nil {
		return nil, fmt.Errorf("zeek: server stream: %w", err)
	}

	version := server.version
	if version == 0 {
		version = tlswire.VersionTLS12
	}
	rec := SSLRecord{
		TS:       meta.TS,
		UID:      ids.NewUID(a.rng),
		OrigIP:   meta.OrigIP,
		OrigPort: meta.OrigPort,
		RespIP:   meta.RespIP,
		RespPort: meta.RespPort,
		Version:  tlswire.VersionString(version),
		SNI:      client.sni,
		// Handshake completion: both sides transitioned to encrypted
		// traffic. A client that alerted and hung up never encrypts.
		Established: client.encrypted && server.encrypted,
		ServerChain: a.ingestChain(meta.TS, server.chain),
		ClientChain: a.ingestChain(meta.TS, client.chain),
		JA3:         client.ja3,
		JA4:         client.ja4,
		Weight:      1,
	}
	a.SSL = append(a.SSL, rec)
	return &a.SSL[len(a.SSL)-1], nil
}

// ingestChain fingerprints every wire certificate and emits x509 records
// for the ones that parse; unparsable DER still contributes a fingerprint
// so the connection's chain remains complete.
func (a *Analyzer) ingestChain(ts time.Time, chain [][]byte) []ids.Fingerprint {
	if len(chain) == 0 {
		return nil
	}
	fps := make([]ids.Fingerprint, 0, len(chain))
	for _, der := range chain {
		fp := ids.FingerprintBytes(der)
		fps = append(fps, fp)
		if a.seen[fp] {
			continue
		}
		a.seen[fp] = true
		info, err := certmodel.ParseDER(der)
		if err != nil {
			a.ParseErrors++
			continue
		}
		a.X509 = append(a.X509, X509Record{TS: ts, ID: ids.NewFileID(fp), Cert: info})
	}
	return fps
}

// parseSide walks one direction's handshake messages.
func parseSide(stream []byte, isClient bool) (sideResult, error) {
	var res sideResult
	hr := tlswire.NewHandshakeReader(bytes.NewReader(stream))
	for {
		h, err := hr.Next()
		if err == io.EOF {
			return res, nil
		}
		if errors.Is(err, tlswire.ErrEncrypted) {
			res.encrypted = true
			return res, nil
		}
		if err != nil {
			return res, err
		}
		switch h.Msg {
		case tlswire.TypeClientHello:
			if !isClient {
				continue
			}
			ch, err := tlswire.ParseClientHello(h.Body)
			if err != nil {
				return res, err
			}
			res.sni = ch.SNI
			res.ja3 = tlswire.JA3(ch)
			res.ja4 = tlswire.JA4(ch)
		case tlswire.TypeServerHello:
			if isClient {
				continue
			}
			sh, err := tlswire.ParseServerHello(h.Body)
			if err != nil {
				return res, err
			}
			res.version = sh.NegotiatedVersion()
		case tlswire.TypeCertificate:
			cm, err := tlswire.ParseCertificateMsg(h.Body)
			if err != nil {
				return res, err
			}
			res.chain = cm.Chain
		case tlswire.TypeCertificateRequest:
			res.sawCertReq = true
		}
	}
}

// Dataset materializes the analyzer's output as a joined dataset.
func (a *Analyzer) Dataset() *Dataset {
	d := NewDataset()
	d.Conns = append(d.Conns, a.SSL...)
	for _, rec := range a.X509 {
		d.AddCert(rec.Cert)
	}
	return d
}
