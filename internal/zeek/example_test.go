package zeek_test

import (
	"fmt"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/tlswire"
	"repro/internal/zeek"
)

// ExampleAnalyzer shows the passive monitor recovering an ssl.log record
// from raw TLS bytes.
func ExampleAnalyzer() {
	gen, err := certmodel.NewGenerator(2)
	if err != nil {
		fmt.Println(err)
		return
	}
	der, err := gen.IssueLeaf(nil, certmodel.Spec{
		SubjectCN: "demo.example.com",
		NotBefore: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	tr := tlswire.Synthesize(tlswire.TranscriptSpec{
		Version:     tlswire.VersionTLS12,
		SNI:         "demo.example.com",
		ServerChain: [][]byte{der},
		ClientChain: [][]byte{der}, // same cert at both endpoints (§5.2.1)
		Established: true,
	}, ids.NewRNG(9))

	an := zeek.NewAnalyzer(ids.NewRNG(1))
	rec, err := an.AnalyzeStreams(zeek.ConnMeta{RespPort: 9093}, tr.ClientToServer, tr.ServerToClient)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("mutual:", rec.IsMutual())
	fmt.Println("shared cert:", rec.ServerLeaf() == rec.ClientLeaf())
	fmt.Println("sni:", rec.SNI)
	// Output:
	// mutual: true
	// shared cert: true
	// sni: demo.example.com
}
