package zeek

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// tail incrementally reads one Zeek TSV log file. Each poll opens the
// file, seeks to the byte offset reached last time, and consumes every
// complete line that has appeared since; a trailing partial line (a row
// the writer has not finished flushing) is left for the next poll. A file
// that shrinks below the saved offset is treated as rotated and read
// again from the start. The offset is exposed so a daemon can persist it
// in a checkpoint and resume tailing exactly where ingestion stopped.
type tail struct {
	path     string
	wantPath string
	nFields  int
	offset   int64
	line     int64
}

// poll consumes newly appended complete rows, invoking row per data line.
// The offset advances past every line handed to row (and past malformed
// lines, so one corrupt row cannot wedge the tailer), but never past a
// partial trailing line.
func (t *tail) poll(row func([]string) error) error {
	f, err := os.Open(t.path)
	if os.IsNotExist(err) {
		return nil // not written yet; keep polling
	}
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() < t.offset {
		// Truncated or rotated in place: start over.
		t.offset = 0
		t.line = 0
	}
	if fi.Size() == t.offset {
		return nil
	}
	if _, err := f.Seek(t.offset, io.SeekStart); err != nil {
		return err
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	last := bytes.LastIndexByte(buf, '\n')
	if last < 0 {
		return nil // only a partial line so far
	}
	data := buf[:last+1]
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		line := string(data[:nl])
		data = data[nl+1:]
		t.offset += int64(nl) + 1
		t.line++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "#path"+fieldSep) {
				if got := strings.TrimPrefix(line, "#path"+fieldSep); got != t.wantPath {
					return fmt.Errorf("zeek: tail %s: log path %q, want %q", t.path, got, t.wantPath)
				}
			}
			continue
		}
		cols := strings.Split(line, fieldSep)
		if len(cols) != t.nFields {
			return fmt.Errorf("zeek: tail %s: line %d has %d fields, want %d",
				t.path, t.line, len(cols), t.nFields)
		}
		if err := row(cols); err != nil {
			return fmt.Errorf("zeek: tail %s: line %d: %w", t.path, t.line, err)
		}
	}
	return nil
}

// SSLTail incrementally reads an ssl.log as it is written.
type SSLTail struct{ t tail }

// NewSSLTail tails the ssl.log at path from the beginning.
func NewSSLTail(path string) *SSLTail {
	return &SSLTail{t: tail{path: path, wantPath: "ssl", nFields: len(sslFields)}}
}

// Poll returns the connection rows appended since the previous poll (nil
// when nothing new). Rows parsed before an error are still returned.
func (s *SSLTail) Poll() ([]SSLRecord, error) {
	var out []SSLRecord
	err := s.t.poll(func(cols []string) error {
		rec, err := parseSSLCols(cols)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	return out, err
}

// Offset is the byte position reached so far, for checkpointing.
func (s *SSLTail) Offset() int64 { return s.t.offset }

// SetOffset resumes tailing from a checkpointed byte position.
func (s *SSLTail) SetOffset(off int64) { s.t.offset = off }

// X509Tail incrementally reads an x509.log as it is written.
type X509Tail struct{ t tail }

// NewX509Tail tails the x509.log at path from the beginning.
func NewX509Tail(path string) *X509Tail {
	return &X509Tail{t: tail{path: path, wantPath: "x509", nFields: len(x509Fields)}}
}

// Poll returns the certificate rows appended since the previous poll.
func (x *X509Tail) Poll() ([]X509Record, error) {
	var out []X509Record
	err := x.t.poll(func(cols []string) error {
		rec, err := parseX509Cols(cols)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	return out, err
}

// Offset is the byte position reached so far, for checkpointing.
func (x *X509Tail) Offset() int64 { return x.t.offset }

// SetOffset resumes tailing from a checkpointed byte position.
func (x *X509Tail) SetOffset(off int64) { x.t.offset = off }
