package zeek

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/metrics"
)

// maxPollChunk caps how many bytes one poll consumes. A daemon restarted
// against a large backlog must not slurp the whole file into memory in a
// single read; instead each poll advances by at most one chunk (ending
// at the last complete line) and the caller keeps polling until it
// drains. 4 MiB comfortably exceeds any sane Zeek TSV line while keeping
// the transient allocation bounded.
const maxPollChunk = 4 << 20

// sigLen is how many bytes of the first data line identify a file when
// dev/inode identity is unavailable or ambiguous (first-line signature).
// The signature anchors at the first non-header line because Zeek log
// headers are identical across rotations of the same log, while the
// first data row (timestamp, UID) is effectively unique per file.
const sigLen = 64

// sigScan bounds how far into the file captureSig looks for the first
// data line (the header block is a few hundred bytes).
const sigScan = 4096

// tailMetrics is the tailer's optional instrumentation; the zero value
// (all nil) records nothing — metrics instruments are nil-tolerant.
type tailMetrics struct {
	pollDur   *metrics.Histogram // wall time per poll
	bytesRead *metrics.Counter   // bytes consumed (complete lines only)
	rows      *metrics.Counter   // data rows delivered
	rotations *metrics.Counter   // rotations detected
	lag       *metrics.Gauge     // file size − consumed offset
}

// tail incrementally reads one Zeek TSV log file. Each poll opens the
// file, seeks to the byte offset reached last time, and consumes newly
// appeared complete lines, at most maxPollChunk bytes per poll; a
// trailing partial line (a row the writer has not finished flushing) is
// left for the next poll. Rotation is detected by file identity — the
// FileInfo retained from the previous poll compared via os.SameFile,
// with a first-line signature fallback when no identity is retained
// (e.g. an offset restored from a checkpoint) — or by the file shrinking
// below the saved offset (copytruncate keeps the inode). On rotation the
// tailer restarts from byte 0, so a rotated file that regrows past the
// old offset before the next poll still has every row read. The offset
// is exposed so a daemon can persist it in a checkpoint and resume
// tailing exactly where ingestion stopped.
type tail struct {
	path     string
	wantPath string
	nFields  int
	offset   int64
	line     int64
	// chunk is the per-poll byte cap (maxPollChunk; tests shrink it).
	chunk int64
	// info is the identity of the file the offset refers to, nil before
	// the first successful poll.
	info os.FileInfo
	// sig is up to sigLen bytes starting at sigOff (the first data
	// line), the content identity backing up dev/inode comparison.
	sig    []byte
	sigOff int64
	// opts selects strict vs permissive malformed-row handling. The zero
	// value is permissive: a corrupt row is consumed (quarantined when
	// sinks are attached) instead of poisoning every subsequent poll.
	opts Options
	// skipping is set after a line longer than one chunk was discarded
	// in permissive mode; polls drop bytes until the next newline.
	skipping bool
	// cols is the reused column-split scratch; its entries alias the
	// poll's read buffer and are only valid inside one row callback.
	cols [][]byte
	// it deduplicates repeated field values across the tailer's whole
	// lifetime — the long-running daemon is exactly the caller whose
	// value population (IPs, versions, fingerprints, issuers) stabilizes
	// after the first polls.
	it *internTable

	m tailMetrics
}

// instrument attaches metric series (labeled by the Zeek log name) to
// this tailer. Without it the tailer records nothing.
func (t *tail) instrument(r *metrics.Registry) {
	l := []string{"file", t.wantPath}
	t.m = tailMetrics{
		pollDur:   r.Histogram("tail_poll_seconds", "wall time of one tail poll", nil, l...),
		bytesRead: r.Counter("tail_bytes_read_total", "log bytes consumed as complete lines", l...),
		rows:      r.Counter("tail_rows_total", "data rows delivered to the parser", l...),
		rotations: r.Counter("tail_rotations_total", "log rotations detected", l...),
		lag:       r.Gauge("tail_lag_bytes", "file size minus consumed offset after a poll", l...),
	}
}

// rotated reports whether the file behind f is a different file than the
// one the saved offset refers to. Identity is dev/inode (os.SameFile on
// the FileInfo retained from the previous poll); the first-data-line
// signature backs it up — it is the only check available when no
// FileInfo is retained (an offset resumed without identity), and it also
// catches an inode number recycled into a fresh file between polls. A
// file that shrank below the offset rotated in place (copytruncate
// keeps the inode).
func (t *tail) rotated(f *os.File, fi os.FileInfo) bool {
	if t.info != nil && !os.SameFile(t.info, fi) {
		return true
	}
	if t.offset > 0 && len(t.sig) > 0 && fi.Size() >= t.sigOff+int64(len(t.sig)) {
		cur := make([]byte, len(t.sig))
		if n, err := f.ReadAt(cur, t.sigOff); err == nil || err == io.EOF {
			if !bytes.Equal(cur[:n], t.sig) {
				return true
			}
		}
	}
	return fi.Size() < t.offset
}

// captureSig (re)derives the signature while it is still shorter than
// sigLen: it scans the file's first sigScan bytes past the '#' header
// lines and signs up to sigLen bytes starting at the first data line. A
// short signature (the first data line was still being written when
// first seen) is extended on later polls; the signed bytes never change
// because the log is append-only.
func (t *tail) captureSig(f *os.File, size int64) {
	if int64(len(t.sig)) >= sigLen || size == 0 {
		return
	}
	if len(t.sig) > 0 && size <= t.sigOff+int64(len(t.sig)) {
		return // nothing new to extend with
	}
	n := size
	if n > sigScan {
		n = sigScan
	}
	buf := make([]byte, n)
	m, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return
	}
	buf = buf[:m]
	var off int64
	for len(buf) > 0 {
		if buf[0] != '#' && buf[0] != '\n' {
			avail := int64(len(buf))
			if avail > sigLen {
				avail = sigLen
			}
			t.sigOff = off
			t.sig = append([]byte(nil), buf[:avail]...)
			return
		}
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			return // header line incomplete; retry next poll
		}
		off += int64(nl) + 1
		buf = buf[nl+1:]
	}
}

// poll consumes newly appended complete rows, invoking row per data line.
// The offset never advances past a partial trailing line, and by at most
// one chunk per call — callers catching up on a backlog poll repeatedly
// until no rows remain.
//
// Malformed rows follow t.opts. Permissive (the default): the offset
// advances past the bad line exactly once, the row is quarantined, and
// the rest of the chunk still parses — this is the poison-pill fix; a
// single corrupt row used to fail Poll without progress, so a daemon
// re-parsed it every tick forever. Strict: Poll rewinds to the start of
// the offending line and returns the error, so nothing is silently
// dropped and ingestion visibly halts there until an operator acts.
func (t *tail) poll(row func([][]byte) error) error {
	defer t.m.pollDur.Since(time.Now())
	f, err := os.Open(t.path)
	if os.IsNotExist(err) {
		return nil // not written yet; keep polling
	}
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if t.rotated(f, fi) {
		t.offset = 0
		t.line = 0
		t.sig = nil
		t.sigOff = 0
		t.skipping = false
		t.m.rotations.Inc()
	}
	t.info = fi
	t.captureSig(f, fi.Size())
	if fi.Size() == t.offset {
		t.m.lag.Set(0)
		return nil
	}
	chunk := t.chunk
	if chunk <= 0 {
		chunk = maxPollChunk
	}
	want := fi.Size() - t.offset
	if want > chunk {
		want = chunk
	}
	buf := make([]byte, want)
	n, err := f.ReadAt(buf, t.offset)
	if err != nil && err != io.EOF {
		return err
	}
	buf = buf[:n]
	if t.skipping {
		// Mid-discard of an oversized line: drop bytes up to and
		// including the next newline, then resume normal parsing.
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			t.offset += int64(len(buf))
			t.m.lag.Set(float64(fi.Size() - t.offset))
			return nil
		}
		t.offset += int64(nl) + 1
		t.line++
		t.skipping = false
		buf = buf[nl+1:]
	}
	last := bytes.LastIndexByte(buf, '\n')
	if last < 0 {
		if int64(len(buf)) >= chunk {
			if t.opts.Strict {
				t.m.lag.Set(float64(fi.Size() - t.offset))
				return fmt.Errorf("zeek: tail %s: line at offset %d exceeds %d bytes", t.path, t.offset, chunk)
			}
			// The line cannot fit in one chunk and its end is not in
			// sight; quarantine a prefix for forensics and discard
			// until the newline shows up.
			re := rowErrf(RejectOversizedLine, "line exceeds %d bytes", chunk)
			re.Line = t.line + 1
			re.Raw = string(buf[:min(len(buf), 256)])
			t.opts.reject(t.wantPath, re)
			t.offset += int64(len(buf))
			t.skipping = true
		}
		t.m.lag.Set(float64(fi.Size() - t.offset))
		return nil // only a partial line so far
	}
	data := buf[:last+1]
	t.m.bytesRead.Add(uint64(len(data)))
	var rows uint64
	defer func() {
		t.m.rows.Add(rows)
		t.m.lag.Set(float64(fi.Size() - t.offset))
	}()
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		lineStart := t.offset
		line := data[:nl]
		data = data[nl+1:]
		t.offset += int64(nl) + 1
		t.line++
		// The batch reader's bufio.Scanner strips a trailing \r; do the
		// same so a CRLF log parses identically tailed or batched (the
		// \r otherwise rides into the last column and rejects the row).
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			if bytes.HasPrefix(line, pathHeader) {
				if got := line[len(pathHeader):]; string(got) != t.wantPath {
					return fmt.Errorf("zeek: tail %s: log path %q, want %q", t.path, got, t.wantPath)
				}
			}
			continue
		}
		t.cols = splitCols(t.cols[:0], line)
		if len(t.cols) != t.nFields && len(t.cols) != altFieldCount(t.wantPath, t.nFields) {
			re := rowErrf(RejectFieldCount, "%d fields, want %d", len(t.cols), t.nFields)
			if err := t.badRow(re, lineStart, line); err != nil {
				return err
			}
			continue
		}
		if err := row(t.cols); err != nil {
			var re *RowError
			if errors.As(err, &re) {
				if err := t.badRow(re, lineStart, line); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("zeek: tail %s: line %d: %w", t.path, t.line, err)
		}
		rows++
	}
	return nil
}

// badRow resolves one malformed line per the tailer's options: strict
// rewinds the offset so the line is not consumed and returns the error;
// permissive quarantines it and returns nil so the poll loop continues.
func (t *tail) badRow(re *RowError, lineStart int64, line []byte) error {
	re.Line, re.Raw = t.line, string(line)
	if t.opts.Strict {
		t.offset = lineStart
		t.line--
		return fmt.Errorf("zeek: tail %s: %w", t.path, re)
	}
	t.opts.reject(t.wantPath, re)
	return nil
}

// SSLTail incrementally reads an ssl.log as it is written.
type SSLTail struct{ t tail }

// NewSSLTail tails the ssl.log at path from the beginning.
func NewSSLTail(path string) *SSLTail {
	return &SSLTail{t: tail{path: path, wantPath: "ssl", nFields: len(sslFields), it: newInternTable()}}
}

// Instrument publishes the tailer's poll duration, bytes/rows read, lag,
// and rotation count to the registry, labeled file="ssl".
func (s *SSLTail) Instrument(r *metrics.Registry) { s.t.instrument(r) }

// SetOptions selects strict vs permissive malformed-row handling and
// attaches the quarantine/metrics sinks (see Options). The default is
// permissive with no sinks.
func (s *SSLTail) SetOptions(o Options) { s.t.opts = o }

// Poll returns the connection rows appended since the previous poll (nil
// when nothing new). Rows parsed before an error are still returned. One
// call consumes at most one chunk (4 MiB) of the backlog; keep polling
// until no rows return to drain a large catch-up.
func (s *SSLTail) Poll() ([]SSLRecord, error) {
	var out []SSLRecord
	err := s.t.poll(func(cols [][]byte) error {
		rec, err := parseSSLCols(cols, s.t.it)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	return out, err
}

// Offset is the byte position reached so far, for checkpointing.
func (s *SSLTail) Offset() int64 { return s.t.offset }

// SetOffset resumes tailing from a checkpointed byte position.
func (s *SSLTail) SetOffset(off int64) { s.t.offset = off }

// SetChunk overrides the per-poll byte cap (<= 0 restores the default).
// Harnesses shrink it to force many polls over a small backlog.
func (s *SSLTail) SetChunk(n int64) { s.t.chunk = n }

// X509Tail incrementally reads an x509.log as it is written.
type X509Tail struct{ t tail }

// NewX509Tail tails the x509.log at path from the beginning.
func NewX509Tail(path string) *X509Tail {
	return &X509Tail{t: tail{path: path, wantPath: "x509", nFields: len(x509Fields), it: newInternTable()}}
}

// Instrument publishes the tailer's poll duration, bytes/rows read, lag,
// and rotation count to the registry, labeled file="x509".
func (x *X509Tail) Instrument(r *metrics.Registry) { x.t.instrument(r) }

// SetOptions selects strict vs permissive malformed-row handling and
// attaches the quarantine/metrics sinks (see Options).
func (x *X509Tail) SetOptions(o Options) { x.t.opts = o }

// Poll returns the certificate rows appended since the previous poll,
// consuming at most one chunk per call (see SSLTail.Poll).
func (x *X509Tail) Poll() ([]X509Record, error) {
	var out []X509Record
	err := x.t.poll(func(cols [][]byte) error {
		rec, err := parseX509Cols(cols, x.t.it)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	return out, err
}

// Offset is the byte position reached so far, for checkpointing.
func (x *X509Tail) Offset() int64 { return x.t.offset }

// SetOffset resumes tailing from a checkpointed byte position.
func (x *X509Tail) SetOffset(off int64) { x.t.offset = off }

// SetChunk overrides the per-poll byte cap (<= 0 restores the default).
// Harnesses shrink it to force many polls over a small backlog.
func (x *X509Tail) SetChunk(n int64) { x.t.chunk = n }
