package zeek

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
	"unsafe"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

// Zeek TSV conventions.
const (
	unsetField = "-"       // Zeek's "unset"
	setEmpty   = "(empty)" // Zeek's empty vector
	fieldSep   = "\t"
)

var sslFields = []string{
	"ts", "uid", "id.orig_h", "id.orig_p", "id.resp_h", "id.resp_p",
	"version", "server_name", "established",
	"cert_chain_fps", "client_cert_chain_fps", "weight",
}

// sslFieldsExt is the extended ssl.log schema: the legacy columns plus
// ClientHello fingerprints. Readers accept either field count; the
// writer emits it only when asked (Extended), so fingerprint-free
// datasets stay byte-identical to the legacy format.
var sslFieldsExt = append(append([]string(nil), sslFields...), "ja3", "ja4")

var x509Fields = []string{
	"ts", "id", "fingerprint", "certificate.version", "certificate.serial",
	"certificate.issuer", "certificate.subject",
	"san.dns", "san.ip", "san.email", "san.uri",
	"certificate.not_valid_before", "certificate.not_valid_after",
	"certificate.key_alg", "certificate.key_length", "self_signed",
}

// SSLWriter emits ssl.log in Zeek TSV format. Rows are rendered into a
// reused byte buffer with strconv.Append* — no per-row column slice, no
// intermediate strings.
type SSLWriter struct {
	w      *bufio.Writer
	opened bool
	buf    []byte

	// Extended switches the writer to the 14-field schema carrying the
	// ja3/ja4 fingerprint columns. It must be set before the first Write
	// (the header is emitted lazily and fixes the schema).
	Extended bool
}

// NewSSLWriter wraps w.
func NewSSLWriter(w io.Writer) *SSLWriter { return &SSLWriter{w: bufio.NewWriter(w)} }

func (sw *SSLWriter) fields() []string {
	if sw.Extended {
		return sslFieldsExt
	}
	return sslFields
}

func writeHeader(w *bufio.Writer, path string, fields []string) error {
	if _, err := fmt.Fprintf(w, "#separator \\x09\n#path\t%s\n#fields\t%s\n",
		path, strings.Join(fields, fieldSep)); err != nil {
		return err
	}
	return nil
}

// Write appends one record.
func (sw *SSLWriter) Write(r *SSLRecord) error {
	if !sw.opened {
		if err := writeHeader(sw.w, "ssl", sw.fields()); err != nil {
			return err
		}
		sw.opened = true
	}
	b := sw.buf[:0]
	b = appendTS(b, r.TS)
	b = append(b, '\t')
	b = append(b, r.UID...)
	b = append(b, '\t')
	b = appendOrUnset(b, r.OrigIP)
	b = append(b, '\t')
	b = strconv.AppendUint(b, uint64(r.OrigPort), 10)
	b = append(b, '\t')
	b = appendOrUnset(b, r.RespIP)
	b = append(b, '\t')
	b = strconv.AppendUint(b, uint64(r.RespPort), 10)
	b = append(b, '\t')
	b = appendOrUnset(b, r.Version)
	b = append(b, '\t')
	b = appendEncodedOrUnset(b, r.SNI)
	b = append(b, '\t')
	b = appendBool(b, r.Established)
	b = append(b, '\t')
	b = appendFPs(b, r.ServerChain)
	b = append(b, '\t')
	b = appendFPs(b, r.ClientChain)
	b = append(b, '\t')
	b = strconv.AppendInt(b, max(r.Weight, 1), 10)
	if sw.Extended {
		b = append(b, '\t')
		b = appendOrUnset(b, r.JA3)
		b = append(b, '\t')
		b = appendOrUnset(b, r.JA4)
	}
	b = append(b, '\n')
	sw.buf = b
	_, err := sw.w.Write(b)
	return err
}

// Flush flushes buffered rows.
func (sw *SSLWriter) Flush() error { return sw.w.Flush() }

// SkipHeader marks the header as already written — for appending rows
// to an existing log.
func (sw *SSLWriter) SkipHeader() { sw.opened = true }

// WriteHeader emits the header immediately if it has not been written —
// for creating a well-formed empty log before any rows exist.
func (sw *SSLWriter) WriteHeader() error {
	if sw.opened {
		return nil
	}
	sw.opened = true
	return writeHeader(sw.w, "ssl", sw.fields())
}

// X509Writer emits x509.log in Zeek TSV format.
type X509Writer struct {
	w      *bufio.Writer
	opened bool
	buf    []byte
}

// NewX509Writer wraps w.
func NewX509Writer(w io.Writer) *X509Writer { return &X509Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (xw *X509Writer) Write(r *X509Record) error {
	if !xw.opened {
		if err := writeHeader(xw.w, "x509", x509Fields); err != nil {
			return err
		}
		xw.opened = true
	}
	c := r.Cert
	b := xw.buf[:0]
	b = appendTS(b, r.TS)
	b = append(b, '\t')
	b = append(b, r.ID...)
	b = append(b, '\t')
	b = append(b, c.Fingerprint...)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(c.Version), 10)
	b = append(b, '\t')
	b = appendOrUnset(b, c.SerialHex)
	b = append(b, '\t')
	b = appendEncodedOrUnset(b, c.IssuerDN())
	b = append(b, '\t')
	b = appendEncodedOrUnset(b, c.SubjectDN())
	b = append(b, '\t')
	b = appendStrs(b, c.SANDNS)
	b = append(b, '\t')
	b = appendStrs(b, c.SANIP)
	b = append(b, '\t')
	b = appendStrs(b, c.SANEmail)
	b = append(b, '\t')
	b = appendStrs(b, c.SANURI)
	b = append(b, '\t')
	b = appendTS(b, c.NotBefore)
	b = append(b, '\t')
	b = appendTS(b, c.NotAfter)
	b = append(b, '\t')
	b = append(b, c.KeyAlg.String()...)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(c.KeyBits), 10)
	b = append(b, '\t')
	b = appendBool(b, c.SelfSigned)
	b = append(b, '\n')
	xw.buf = b
	_, err := xw.w.Write(b)
	return err
}

// Flush flushes buffered rows.
func (xw *X509Writer) Flush() error { return xw.w.Flush() }

// SkipHeader marks the header as already written — for appending rows
// to an existing log.
func (xw *X509Writer) SkipHeader() { xw.opened = true }

// WriteHeader emits the header immediately if it has not been written —
// for creating a well-formed empty log before any rows exist.
func (xw *X509Writer) WriteHeader() error {
	if xw.opened {
		return nil
	}
	xw.opened = true
	return writeHeader(xw.w, "x509", x509Fields)
}

// bstr views b as a string without copying. The view aliases b, so it is
// only handed to functions that do not retain their argument (strconv
// parsers); anything that outlives the current row must copy.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// parseSSLCols decodes one ssl.log row from its raw columns (aliases into
// the reader's buffer — everything retained is copied or interned).
// Malformed columns return a *RowError carrying the quarantine reason;
// the caller decides whether that aborts (strict) or skips (permissive).
func parseSSLCols(cols [][]byte, it *internTable) (SSLRecord, error) {
	ts, err := parseTS(cols[0])
	if err != nil {
		return SSLRecord{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	op, err := parsePort(cols[3])
	if err != nil {
		return SSLRecord{}, rowErrf(RejectPort, "orig port: %v", err)
	}
	rp, err := parsePort(cols[5])
	if err != nil {
		return SSLRecord{}, rowErrf(RejectPort, "resp port: %v", err)
	}
	w, err := strconv.ParseInt(bstr(cols[11]), 10, 64)
	if err != nil {
		return SSLRecord{}, rowErrf(RejectWeight, "weight: %v", reparseIntErr(cols[11]))
	}
	if w < 1 {
		// The writer clamps weights to >= 1; zero or negative weights
		// here would silently corrupt every weighted tally downstream.
		return SSLRecord{}, rowErrf(RejectWeight, "weight %d < 1", w)
	}
	rec := SSLRecord{
		TS:          ts,
		UID:         ids.UID(cols[1]),
		OrigIP:      it.str(unsetOr(cols[2])),
		OrigPort:    op,
		RespIP:      it.str(unsetOr(cols[4])),
		RespPort:    rp,
		Version:     it.str(unsetOr(cols[6])),
		SNI:         it.unescaped(unsetOr(cols[7])),
		Established: string(cols[8]) == "T",
		ServerChain: it.fps(cols[9]),
		ClientChain: it.fps(cols[10]),
		Weight:      w,
	}
	if len(cols) >= len(sslFieldsExt) {
		// Extended schema: ja3/ja4 fingerprint columns. Interned — a
		// dataset has few distinct fingerprints across many rows.
		rec.JA3 = it.str(unsetOr(cols[12]))
		rec.JA4 = it.str(unsetOr(cols[13]))
	}
	return rec, nil
}

// parseX509Cols decodes one x509.log row. Malformed columns return a
// *RowError carrying the quarantine reason.
func parseX509Cols(cols [][]byte, it *internTable) (X509Record, error) {
	ts, err := parseTS(cols[0])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	nb, err := parseTS(cols[11])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	na, err := parseTS(cols[12])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	ver, err := strconv.Atoi(bstr(cols[3]))
	if err != nil || ver < 0 {
		return X509Record{}, rowErrf(RejectCertVersion, "cert version %q", cols[3])
	}
	bits, err := strconv.Atoi(bstr(cols[14]))
	if err != nil || bits < 0 {
		return X509Record{}, rowErrf(RejectKeyLength, "key length %q", cols[14])
	}
	icn, iorg := it.dn(cols[5])
	scn, sorg := it.dn(cols[6])
	cert := &certmodel.CertInfo{
		Fingerprint: ids.Fingerprint(it.str(cols[2])),
		Version:     ver,
		SerialHex:   string(unsetOr(cols[4])),
		IssuerCN:    icn,
		IssuerOrg:   iorg,
		SubjectCN:   scn,
		SubjectOrg:  sorg,
		SANDNS:      splitStrs(cols[7], it),
		SANIP:       splitStrs(cols[8], it),
		SANEmail:    splitStrs(cols[9], it),
		SANURI:      splitStrs(cols[10], it),
		NotBefore:   nb,
		NotAfter:    na,
		KeyAlg:      parseKeyAlg(cols[13]),
		KeyBits:     bits,
		SelfSigned:  string(cols[15]) == "T",
	}
	return X509Record{TS: ts, ID: ids.FileID(cols[1]), Cert: cert}, nil
}

// ErrStop, returned from a ForEach callback, stops iteration without
// error — the streaming reader's early exit.
var ErrStop = errors.New("zeek: stop iteration")

// ForEachSSL streams an ssl.log, invoking fn once per row without
// materializing the whole log. The default is strict (the first
// malformed row aborts with an error); pass Permissive and its
// companions to quarantine bad rows instead. fn may return ErrStop to
// end early.
func ForEachSSL(r io.Reader, fn func(*SSLRecord) error, opts ...Opt) error {
	return forEachSSL(r, resolveOpts(opts), fn)
}

// ForEachSSLWith streams an ssl.log under an explicit Options struct.
//
// Deprecated: use ForEachSSL with Permissive/WithQuarantine/WithMetrics
// options.
func ForEachSSLWith(r io.Reader, o Options, fn func(*SSLRecord) error) error {
	return forEachSSL(r, o, fn)
}

func forEachSSL(r io.Reader, o Options, fn func(*SSLRecord) error) error {
	it := newInternTable()
	err := readTSV(r, "ssl", len(sslFields), o, func(cols [][]byte) error {
		rec, err := parseSSLCols(cols, it)
		if err != nil {
			return err
		}
		return fn(&rec)
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// ForEachX509 streams an x509.log, row by row, strict by default like
// ForEachSSL. fn may return ErrStop to end early.
func ForEachX509(r io.Reader, fn func(*X509Record) error, opts ...Opt) error {
	return forEachX509(r, resolveOpts(opts), fn)
}

// ForEachX509With streams an x509.log under an explicit Options struct.
//
// Deprecated: use ForEachX509 with Permissive/WithQuarantine/WithMetrics
// options.
func ForEachX509With(r io.Reader, o Options, fn func(*X509Record) error) error {
	return forEachX509(r, o, fn)
}

func forEachX509(r io.Reader, o Options, fn func(*X509Record) error) error {
	it := newInternTable()
	err := readTSV(r, "x509", len(x509Fields), o, func(cols [][]byte) error {
		rec, err := parseX509Cols(cols, it)
		if err != nil {
			return err
		}
		return fn(&rec)
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// ForEachSSLBatch streams an ssl.log in record batches of Options
// .BatchSize (default 512): one callback per batch instead of one per
// row, sized for Engine.IngestConnBatch. The slice is reused between
// calls — fn must copy any records it retains past its return (the
// engine's batch ingest does). Rows parsed before a strict-mode error
// are still delivered. fn may return ErrStop to end early.
func ForEachSSLBatch(r io.Reader, fn func([]SSLRecord) error, opts ...Opt) error {
	return forEachSSLBatch(r, resolveOpts(opts), fn)
}

func forEachSSLBatch(r io.Reader, o Options, fn func([]SSLRecord) error) error {
	it := newInternTable()
	buf := make([]SSLRecord, 0, o.batchSize())
	err := readTSV(r, "ssl", len(sslFields), o, func(cols [][]byte) error {
		rec, err := parseSSLCols(cols, it)
		if err != nil {
			return err
		}
		buf = append(buf, rec)
		if len(buf) >= o.batchSize() {
			err := fn(buf)
			buf = buf[:0]
			return err
		}
		return nil
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	if len(buf) > 0 {
		if ferr := fn(buf); err == nil && !errors.Is(ferr, ErrStop) {
			err = ferr
		}
	}
	return err
}

// ForEachX509Batch streams an x509.log in record batches, the
// certificate-side counterpart of ForEachSSLBatch.
func ForEachX509Batch(r io.Reader, fn func([]X509Record) error, opts ...Opt) error {
	return forEachX509Batch(r, resolveOpts(opts), fn)
}

func forEachX509Batch(r io.Reader, o Options, fn func([]X509Record) error) error {
	it := newInternTable()
	buf := make([]X509Record, 0, o.batchSize())
	err := readTSV(r, "x509", len(x509Fields), o, func(cols [][]byte) error {
		rec, err := parseX509Cols(cols, it)
		if err != nil {
			return err
		}
		buf = append(buf, rec)
		if len(buf) >= o.batchSize() {
			err := fn(buf)
			buf = buf[:0]
			return err
		}
		return nil
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	if len(buf) > 0 {
		if ferr := fn(buf); err == nil && !errors.Is(ferr, ErrStop) {
			err = ferr
		}
	}
	return err
}

// ReadSSL parses an ssl.log stream.
func ReadSSL(r io.Reader) ([]SSLRecord, error) {
	var out []SSLRecord
	err := ForEachSSL(r, func(rec *SSLRecord) error {
		out = append(out, *rec)
		return nil
	})
	return out, err
}

// ReadX509 parses an x509.log stream.
func ReadX509(r io.Reader) ([]X509Record, error) {
	var out []X509Record
	err := ForEachX509(r, func(rec *X509Record) error {
		out = append(out, *rec)
		return nil
	})
	return out, err
}

// LoadDataset reads both logs and joins them, strict by default. With
// Permissive, a corrupt row is quarantined and the rest of the dataset
// still loads.
func LoadDataset(ssl, x509 io.Reader, opts ...Opt) (*Dataset, error) {
	return loadDataset(ssl, x509, resolveOpts(opts))
}

// LoadDatasetWith reads both logs under an explicit Options struct.
//
// Deprecated: use LoadDataset with Permissive/WithQuarantine/WithMetrics
// options.
func LoadDatasetWith(ssl, x509 io.Reader, o Options) (*Dataset, error) {
	return loadDataset(ssl, x509, o)
}

func loadDataset(ssl, x509 io.Reader, o Options) (*Dataset, error) {
	d := NewDataset()
	err := forEachSSLBatch(ssl, o, func(recs []SSLRecord) error {
		d.Conns = append(d.Conns, recs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = forEachX509Batch(x509, o, func(recs []X509Record) error {
		for i := range recs {
			d.AddCert(recs[i].Cert)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// pathHeader prefixes the #path header line.
var pathHeader = []byte("#path" + fieldSep)

// altFieldCount returns the alternate accepted column count for a log
// path: ssl rows may carry the extended fingerprint columns.
func altFieldCount(path string, nFields int) int {
	if path == "ssl" && nFields == len(sslFields) {
		return len(sslFieldsExt)
	}
	return nFields
}

// readTSV drives the line loop shared by both schemas, handing each data
// line's columns to row as sub-slices of the scanner's buffer — no line
// string, no column slice allocation per row. row returns *RowError for
// malformed content; under permissive Options those are quarantined and
// the loop continues, which is what lets one corrupt row pass through a
// 23-month ingest without either aborting the batch or wedging a tailer.
// Structural errors (a #path header naming a different log, an
// unreadable source) abort in both modes — they mean the whole file is
// wrong, not one row.
func readTSV(r io.Reader, wantPath string, nFields int, o Options, row func([][]byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	alt := altFieldCount(wantPath, nFields)
	cols := make([][]byte, 0, nFields+1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			if bytes.HasPrefix(line, pathHeader) {
				if got := line[len(pathHeader):]; string(got) != wantPath {
					return fmt.Errorf("zeek: log path %q, want %q", got, wantPath)
				}
			}
			continue
		}
		cols = splitCols(cols[:0], line)
		if len(cols) != nFields && len(cols) != alt {
			re := rowErrf(RejectFieldCount, "%d fields, want %d", len(cols), nFields)
			re.Line, re.Raw = int64(lineNo), string(line)
			if o.Strict {
				return re
			}
			o.reject(wantPath, re)
			continue
		}
		if err := row(cols); err != nil {
			var re *RowError
			if errors.As(err, &re) && !o.Strict {
				re.Line, re.Raw = int64(lineNo), string(line)
				o.reject(wantPath, re)
				continue
			}
			return fmt.Errorf("zeek: line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

// splitCols appends line's tab-separated columns to dst as sub-slices of
// line.
func splitCols(dst [][]byte, line []byte) [][]byte {
	for {
		i := bytes.IndexByte(line, '\t')
		if i < 0 {
			return append(dst, line)
		}
		dst = append(dst, line[:i])
		line = line[i+1:]
	}
}

func formatTS(t time.Time) string { return string(appendTS(nil, t)) }

func appendTS(b []byte, t time.Time) []byte {
	return strconv.AppendFloat(b, float64(t.UnixNano())/1e9, 'f', 6, 64)
}

// maxTS bounds accepted epoch timestamps to ±9.2e9 seconds (~1678 to
// ~2261), just inside the ±~9.22e9 where time.Time.UnixNano overflows
// and a round trip through formatTS silently corrupts the value (found
// by FuzzParseSSLRow). The range is symmetric because real certificates
// do carry absurd validity dates (the paper's bad-dates analysis sees
// not_valid_after values in 1757 and far-future years); those are data,
// while anything unrepresentable is a corrupt row.
const maxTS = 9_200_000_000

func parseTS(b []byte) (time.Time, error) {
	f, err := strconv.ParseFloat(bstr(b), 64)
	if err != nil {
		// Re-parse from a copy: the strconv error retains its input
		// string, which must not alias the reader's reused buffer.
		return time.Time{}, fmt.Errorf("zeek: timestamp %q: %w", b, reparseFloatErr(b))
	}
	// ParseFloat accepts "NaN" and "Inf"; int64(NaN) is unspecified, so
	// these must be rejected before conversion, not discovered as
	// garbage dates downstream.
	if math.IsNaN(f) || f < -maxTS || f > maxTS {
		return time.Time{}, fmt.Errorf("zeek: timestamp %q outside ±%d", b, int64(maxTS))
	}
	sec := int64(f)
	nsec := int64((f - float64(sec)) * 1e9)
	return time.Unix(sec, nsec).UTC(), nil
}

// reparseFloatErr re-derives a ParseFloat error against a copied string,
// for the cold error path only.
func reparseFloatErr(b []byte) error {
	_, err := strconv.ParseFloat(string(b), 64)
	return err
}

// reparseIntErr is reparseFloatErr for ParseInt.
func reparseIntErr(b []byte) error {
	_, err := strconv.ParseInt(string(b), 10, 64)
	return err
}

// parsePort decodes a Zeek port column, rejecting values a uint16 cast
// would silently truncate (port 70000 is a corrupt row, not port 4464).
func parsePort(b []byte) (uint16, error) {
	p, err := strconv.Atoi(bstr(b))
	if err != nil {
		_, err = strconv.Atoi(string(b))
		return 0, err
	}
	if p < 0 || p > 65535 {
		return 0, fmt.Errorf("port %d outside [0, 65535]", p)
	}
	return uint16(p), nil
}

func parseKeyAlg(b []byte) certmodel.KeyAlg {
	switch string(b) {
	case "rsa":
		return certmodel.KeyRSA
	case "ecdsa":
		return certmodel.KeyECDSA
	default:
		return certmodel.KeyUnknown
	}
}

// isUnset reports the Zeek unset sentinel.
func isUnset(b []byte) bool { return string(b) == unsetField }

// isEmptyCol reports a vector column with no elements.
func isEmptyCol(b []byte) bool {
	return len(b) == 0 || string(b) == setEmpty || string(b) == unsetField
}

// unsetOr maps the unset sentinel to nil, leaving other values as-is.
func unsetOr(b []byte) []byte {
	if isUnset(b) {
		return nil
	}
	return b
}

// appendOrUnset writes s, or the unset sentinel when s is empty.
func appendOrUnset(b []byte, s string) []byte {
	if s == "" {
		return append(b, unsetField...)
	}
	return append(b, s...)
}

// appendEncodedOrUnset writes the escaped, sentinel-protected form of s
// (see encodeField), or the unset sentinel when s is empty.
func appendEncodedOrUnset(b []byte, s string) []byte {
	if s == "" {
		return append(b, unsetField...)
	}
	return appendEncoded(b, s)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 'T')
	}
	return append(b, 'F')
}

// appendFPs renders chain fingerprints for the cert_chain_fps column.
func appendFPs(b []byte, fps []ids.Fingerprint) []byte {
	if len(fps) == 0 {
		return append(b, setEmpty...)
	}
	for i, fp := range fps {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, fp...)
	}
	return b
}

// appendStrs renders a string vector column, escaping each element.
func appendStrs(b []byte, xs []string) []byte {
	if len(xs) == 0 {
		return append(b, setEmpty...)
	}
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendEncoded(b, x)
	}
	return b
}

// splitStrs decodes a vector column into unescaped, interned elements.
func splitStrs(b []byte, it *internTable) []string {
	if isEmptyCol(b) {
		return nil
	}
	out := make([]string, 0, bytes.Count(b, []byte{','})+1)
	for {
		i := bytes.IndexByte(b, ',')
		if i < 0 {
			return append(out, it.unescaped(b))
		}
		out = append(out, it.unescaped(b[:i]))
		b = b[i+1:]
	}
}

// encodeField prepares one value for the log: structural characters are
// hex-escaped, and a value that would collide with a TSV sentinel — a
// literal "-" (Zeek's unset) or "(empty)" (Zeek's empty vector) — has
// its first byte escaped so it survives the round trip instead of
// silently reading back as unset/empty (found by the escape round-trip
// property test).
func encodeField(s string) string { return string(appendEncoded(nil, s)) }

// appendEncoded is encodeField into a caller-owned buffer.
func appendEncoded(b []byte, s string) []byte {
	start := len(b)
	b = appendEscaped(b, s)
	switch string(b[start:]) {
	case unsetField:
		return append(b[:start], `\x2d`...)
	case setEmpty:
		return append(b[:start], `\x28empty)`...)
	}
	return b
}

// escapeField protects the TSV structure: tabs, newlines, commas (vector
// separator) and the escape character itself are hex-escaped, Zeek style.
func escapeField(s string) string {
	if !strings.ContainsAny(s, "\t\n\r,\\") {
		return s
	}
	return string(appendEscaped(nil, s))
}

func appendEscaped(b []byte, s string) []byte {
	if !strings.ContainsAny(s, "\t\n\r,\\") {
		return append(b, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			b = append(b, `\x09`...)
		case '\n':
			b = append(b, `\x0a`...)
		case '\r':
			b = append(b, `\x0d`...)
		case ',':
			b = append(b, `\x2c`...)
		case '\\':
			b = append(b, `\x5c`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// hasEscape reports whether b contains a candidate \x escape.
func hasEscape(b []byte) bool { return bytes.Contains(b, escMark) }

var escMark = []byte(`\x`)

func unescapeField(s string) string {
	if !strings.Contains(s, `\x`) {
		return s
	}
	return string(unescapeAppend(nil, []byte(s)))
}

// unescapeAppend decodes \xNN escapes from src into dst.
func unescapeAppend(dst, src []byte) []byte {
	for i := 0; i < len(src); i++ {
		if src[i] == '\\' && i+3 < len(src) && src[i+1] == 'x' {
			hi := unhex(src[i+2])
			lo := unhex(src[i+3])
			if hi >= 0 && lo >= 0 {
				dst = append(dst, byte(hi<<4|lo))
				i += 3
				continue
			}
		}
		dst = append(dst, src[i])
	}
	return dst
}

func unhex(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
