package zeek

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
)

// Zeek TSV conventions.
const (
	unsetField = "-"       // Zeek's "unset"
	setEmpty   = "(empty)" // Zeek's empty vector
	fieldSep   = "\t"
)

var sslFields = []string{
	"ts", "uid", "id.orig_h", "id.orig_p", "id.resp_h", "id.resp_p",
	"version", "server_name", "established",
	"cert_chain_fps", "client_cert_chain_fps", "weight",
}

var x509Fields = []string{
	"ts", "id", "fingerprint", "certificate.version", "certificate.serial",
	"certificate.issuer", "certificate.subject",
	"san.dns", "san.ip", "san.email", "san.uri",
	"certificate.not_valid_before", "certificate.not_valid_after",
	"certificate.key_alg", "certificate.key_length", "self_signed",
}

// SSLWriter emits ssl.log in Zeek TSV format.
type SSLWriter struct {
	w      *bufio.Writer
	opened bool
}

// NewSSLWriter wraps w.
func NewSSLWriter(w io.Writer) *SSLWriter { return &SSLWriter{w: bufio.NewWriter(w)} }

func writeHeader(w *bufio.Writer, path string, fields []string) error {
	if _, err := fmt.Fprintf(w, "#separator \\x09\n#path\t%s\n#fields\t%s\n",
		path, strings.Join(fields, fieldSep)); err != nil {
		return err
	}
	return nil
}

// Write appends one record.
func (sw *SSLWriter) Write(r *SSLRecord) error {
	if !sw.opened {
		if err := writeHeader(sw.w, "ssl", sslFields); err != nil {
			return err
		}
		sw.opened = true
	}
	cols := []string{
		formatTS(r.TS),
		string(r.UID),
		orUnset(r.OrigIP),
		strconv.Itoa(int(r.OrigPort)),
		orUnset(r.RespIP),
		strconv.Itoa(int(r.RespPort)),
		orUnset(r.Version),
		orUnset(encodeField(r.SNI)),
		boolStr(r.Established),
		joinFPs(r.ServerChain),
		joinFPs(r.ClientChain),
		strconv.FormatInt(max64(r.Weight, 1), 10),
	}
	_, err := sw.w.WriteString(strings.Join(cols, fieldSep) + "\n")
	return err
}

// Flush flushes buffered rows.
func (sw *SSLWriter) Flush() error { return sw.w.Flush() }

// SkipHeader marks the header as already written — for appending rows
// to an existing log.
func (sw *SSLWriter) SkipHeader() { sw.opened = true }

// X509Writer emits x509.log in Zeek TSV format.
type X509Writer struct {
	w      *bufio.Writer
	opened bool
}

// NewX509Writer wraps w.
func NewX509Writer(w io.Writer) *X509Writer { return &X509Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (xw *X509Writer) Write(r *X509Record) error {
	if !xw.opened {
		if err := writeHeader(xw.w, "x509", x509Fields); err != nil {
			return err
		}
		xw.opened = true
	}
	c := r.Cert
	cols := []string{
		formatTS(r.TS),
		string(r.ID),
		string(c.Fingerprint),
		strconv.Itoa(c.Version),
		orUnset(c.SerialHex),
		orUnset(encodeField(c.IssuerDN())),
		orUnset(encodeField(c.SubjectDN())),
		joinStrs(c.SANDNS),
		joinStrs(c.SANIP),
		joinStrs(c.SANEmail),
		joinStrs(c.SANURI),
		formatTS(c.NotBefore),
		formatTS(c.NotAfter),
		c.KeyAlg.String(),
		strconv.Itoa(c.KeyBits),
		boolStr(c.SelfSigned),
	}
	_, err := xw.w.WriteString(strings.Join(cols, fieldSep) + "\n")
	return err
}

// Flush flushes buffered rows.
func (xw *X509Writer) Flush() error { return xw.w.Flush() }

// SkipHeader marks the header as already written — for appending rows
// to an existing log.
func (xw *X509Writer) SkipHeader() { xw.opened = true }

// parseSSLCols decodes one ssl.log row. Malformed columns return a
// *RowError carrying the quarantine reason; the caller decides whether
// that aborts (strict) or skips (permissive).
func parseSSLCols(cols []string) (SSLRecord, error) {
	ts, err := parseTS(cols[0])
	if err != nil {
		return SSLRecord{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	op, err := parsePort(cols[3])
	if err != nil {
		return SSLRecord{}, rowErrf(RejectPort, "orig port: %v", err)
	}
	rp, err := parsePort(cols[5])
	if err != nil {
		return SSLRecord{}, rowErrf(RejectPort, "resp port: %v", err)
	}
	w, err := strconv.ParseInt(cols[11], 10, 64)
	if err != nil {
		return SSLRecord{}, rowErrf(RejectWeight, "weight: %v", err)
	}
	if w < 1 {
		// The writer clamps weights to >= 1; zero or negative weights
		// here would silently corrupt every weighted tally downstream.
		return SSLRecord{}, rowErrf(RejectWeight, "weight %d < 1", w)
	}
	return SSLRecord{
		TS:          ts,
		UID:         ids.UID(cols[1]),
		OrigIP:      unsetOr(cols[2]),
		OrigPort:    op,
		RespIP:      unsetOr(cols[4]),
		RespPort:    rp,
		Version:     unsetOr(cols[6]),
		SNI:         unescapeField(unsetOr(cols[7])),
		Established: cols[8] == "T",
		ServerChain: splitFPs(cols[9]),
		ClientChain: splitFPs(cols[10]),
		Weight:      w,
	}, nil
}

// parseX509Cols decodes one x509.log row. Malformed columns return a
// *RowError carrying the quarantine reason.
func parseX509Cols(cols []string) (X509Record, error) {
	ts, err := parseTS(cols[0])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	nb, err := parseTS(cols[11])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	na, err := parseTS(cols[12])
	if err != nil {
		return X509Record{}, &RowError{Reason: RejectTimestamp, Err: err}
	}
	ver, err := strconv.Atoi(cols[3])
	if err != nil || ver < 0 {
		return X509Record{}, rowErrf(RejectCertVersion, "cert version %q", cols[3])
	}
	bits, err := strconv.Atoi(cols[14])
	if err != nil || bits < 0 {
		return X509Record{}, rowErrf(RejectKeyLength, "key length %q", cols[14])
	}
	icn, iorg := certmodel.ParseDN(unescapeField(unsetOr(cols[5])))
	scn, sorg := certmodel.ParseDN(unescapeField(unsetOr(cols[6])))
	cert := &certmodel.CertInfo{
		Fingerprint: ids.Fingerprint(cols[2]),
		Version:     ver,
		SerialHex:   unsetOr(cols[4]),
		IssuerCN:    icn,
		IssuerOrg:   iorg,
		SubjectCN:   scn,
		SubjectOrg:  sorg,
		SANDNS:      splitStrs(cols[7]),
		SANIP:       splitStrs(cols[8]),
		SANEmail:    splitStrs(cols[9]),
		SANURI:      splitStrs(cols[10]),
		NotBefore:   nb,
		NotAfter:    na,
		KeyAlg:      parseKeyAlg(cols[13]),
		KeyBits:     bits,
		SelfSigned:  cols[15] == "T",
	}
	return X509Record{TS: ts, ID: ids.FileID(cols[1]), Cert: cert}, nil
}

// ErrStop, returned from a ForEach callback, stops iteration without
// error — the streaming reader's early exit.
var ErrStop = errors.New("zeek: stop iteration")

// ForEachSSL streams an ssl.log, invoking fn once per row without
// materializing the whole log. The default is strict (the first
// malformed row aborts with an error); pass Permissive and its
// companions to quarantine bad rows instead. fn may return ErrStop to
// end early.
func ForEachSSL(r io.Reader, fn func(*SSLRecord) error, opts ...Opt) error {
	return forEachSSL(r, resolveOpts(opts), fn)
}

// ForEachSSLWith streams an ssl.log under an explicit Options struct.
//
// Deprecated: use ForEachSSL with Permissive/WithQuarantine/WithMetrics
// options.
func ForEachSSLWith(r io.Reader, o Options, fn func(*SSLRecord) error) error {
	return forEachSSL(r, o, fn)
}

func forEachSSL(r io.Reader, o Options, fn func(*SSLRecord) error) error {
	err := readTSV(r, "ssl", len(sslFields), o, func(cols []string) error {
		rec, err := parseSSLCols(cols)
		if err != nil {
			return err
		}
		return fn(&rec)
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// ForEachX509 streams an x509.log, row by row, strict by default like
// ForEachSSL. fn may return ErrStop to end early.
func ForEachX509(r io.Reader, fn func(*X509Record) error, opts ...Opt) error {
	return forEachX509(r, resolveOpts(opts), fn)
}

// ForEachX509With streams an x509.log under an explicit Options struct.
//
// Deprecated: use ForEachX509 with Permissive/WithQuarantine/WithMetrics
// options.
func ForEachX509With(r io.Reader, o Options, fn func(*X509Record) error) error {
	return forEachX509(r, o, fn)
}

func forEachX509(r io.Reader, o Options, fn func(*X509Record) error) error {
	err := readTSV(r, "x509", len(x509Fields), o, func(cols []string) error {
		rec, err := parseX509Cols(cols)
		if err != nil {
			return err
		}
		return fn(&rec)
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// ReadSSL parses an ssl.log stream.
func ReadSSL(r io.Reader) ([]SSLRecord, error) {
	var out []SSLRecord
	err := ForEachSSL(r, func(rec *SSLRecord) error {
		out = append(out, *rec)
		return nil
	})
	return out, err
}

// ReadX509 parses an x509.log stream.
func ReadX509(r io.Reader) ([]X509Record, error) {
	var out []X509Record
	err := ForEachX509(r, func(rec *X509Record) error {
		out = append(out, *rec)
		return nil
	})
	return out, err
}

// LoadDataset reads both logs and joins them, strict by default. With
// Permissive, a corrupt row is quarantined and the rest of the dataset
// still loads.
func LoadDataset(ssl, x509 io.Reader, opts ...Opt) (*Dataset, error) {
	return loadDataset(ssl, x509, resolveOpts(opts))
}

// LoadDatasetWith reads both logs under an explicit Options struct.
//
// Deprecated: use LoadDataset with Permissive/WithQuarantine/WithMetrics
// options.
func LoadDatasetWith(ssl, x509 io.Reader, o Options) (*Dataset, error) {
	return loadDataset(ssl, x509, o)
}

func loadDataset(ssl, x509 io.Reader, o Options) (*Dataset, error) {
	d := NewDataset()
	err := forEachSSL(ssl, o, func(rec *SSLRecord) error {
		d.Conns = append(d.Conns, *rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = forEachX509(x509, o, func(rec *X509Record) error {
		d.AddCert(rec.Cert)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// readTSV drives the line loop shared by both schemas. row receives the
// split columns and returns *RowError for malformed content; under
// permissive Options those are quarantined and the loop continues, which
// is what lets one corrupt row pass through a 23-month ingest without
// either aborting the batch or wedging a tailer. Structural errors (a
// #path header naming a different log, an unreadable source) abort in
// both modes — they mean the whole file is wrong, not one row.
func readTSV(r io.Reader, wantPath string, nFields int, o Options, row func([]string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "#path"+fieldSep) {
				if got := strings.TrimPrefix(line, "#path"+fieldSep); got != wantPath {
					return fmt.Errorf("zeek: log path %q, want %q", got, wantPath)
				}
			}
			continue
		}
		cols := strings.Split(line, fieldSep)
		if len(cols) != nFields {
			re := rowErrf(RejectFieldCount, "%d fields, want %d", len(cols), nFields)
			re.Line, re.Raw = int64(lineNo), line
			if o.Strict {
				return re
			}
			o.reject(wantPath, re)
			continue
		}
		if err := row(cols); err != nil {
			var re *RowError
			if errors.As(err, &re) && !o.Strict {
				re.Line, re.Raw = int64(lineNo), line
				o.reject(wantPath, re)
				continue
			}
			return fmt.Errorf("zeek: line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

func formatTS(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixNano())/1e9, 'f', 6, 64)
}

// maxTS bounds accepted epoch timestamps to ±9.2e9 seconds (~1678 to
// ~2261), just inside the ±~9.22e9 where time.Time.UnixNano overflows
// and a round trip through formatTS silently corrupts the value (found
// by FuzzParseSSLRow). The range is symmetric because real certificates
// do carry absurd validity dates (the paper's bad-dates analysis sees
// not_valid_after values in 1757 and far-future years); those are data,
// while anything unrepresentable is a corrupt row.
const maxTS = 9_200_000_000

func parseTS(s string) (time.Time, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("zeek: timestamp %q: %w", s, err)
	}
	// ParseFloat accepts "NaN" and "Inf"; int64(NaN) is unspecified, so
	// these must be rejected before conversion, not discovered as
	// garbage dates downstream.
	if math.IsNaN(f) || f < -maxTS || f > maxTS {
		return time.Time{}, fmt.Errorf("zeek: timestamp %q outside ±%d", s, int64(maxTS))
	}
	sec := int64(f)
	nsec := int64((f - float64(sec)) * 1e9)
	return time.Unix(sec, nsec).UTC(), nil
}

// parsePort decodes a Zeek port column, rejecting values a uint16 cast
// would silently truncate (port 70000 is a corrupt row, not port 4464).
func parsePort(s string) (uint16, error) {
	p, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 65535 {
		return 0, fmt.Errorf("port %d outside [0, 65535]", p)
	}
	return uint16(p), nil
}

func parseKeyAlg(s string) certmodel.KeyAlg {
	switch s {
	case "rsa":
		return certmodel.KeyRSA
	case "ecdsa":
		return certmodel.KeyECDSA
	default:
		return certmodel.KeyUnknown
	}
}

func orUnset(s string) string {
	if s == "" {
		return unsetField
	}
	return s
}

func unsetOr(s string) string {
	if s == unsetField {
		return ""
	}
	return s
}

func boolStr(b bool) string {
	if b {
		return "T"
	}
	return "F"
}

func joinStrs(xs []string) string {
	if len(xs) == 0 {
		return setEmpty
	}
	esc := make([]string, len(xs))
	for i, x := range xs {
		esc[i] = encodeField(x)
	}
	return strings.Join(esc, ",")
}

func splitStrs(s string) []string {
	if s == setEmpty || s == unsetField || s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = unescapeField(parts[i])
	}
	return parts
}

// encodeField prepares one value for the log: structural characters are
// hex-escaped, and a value that would collide with a TSV sentinel — a
// literal "-" (Zeek's unset) or "(empty)" (Zeek's empty vector) — has
// its first byte escaped so it survives the round trip instead of
// silently reading back as unset/empty (found by the escape round-trip
// property test).
func encodeField(s string) string {
	switch s = escapeField(s); s {
	case unsetField:
		return `\x2d`
	case setEmpty:
		return `\x28empty)`
	default:
		return s
	}
}

// escapeField protects the TSV structure: tabs, newlines, commas (vector
// separator) and the escape character itself are hex-escaped, Zeek style.
func escapeField(s string) string {
	if !strings.ContainsAny(s, "\t\n\r,\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			b.WriteString(`\x09`)
		case '\n':
			b.WriteString(`\x0a`)
		case '\r':
			b.WriteString(`\x0d`)
		case ',':
			b.WriteString(`\x2c`)
		case '\\':
			b.WriteString(`\x5c`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeField(s string) string {
	if !strings.Contains(s, `\x`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+3 < len(s) && s[i+1] == 'x' {
			hi := unhex(s[i+2])
			lo := unhex(s[i+3])
			if hi >= 0 && lo >= 0 {
				b.WriteByte(byte(hi<<4 | lo))
				i += 3
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func unhex(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
