package zeek

import (
	"testing"

	"repro/internal/race"
)

// Representative hot-path rows: a mutual-TLS connection with a two-cert
// server chain, and a certificate with SAN DNS entries and escaped DN
// components — the shapes a steady-state tail parses millions of times.
const (
	allocSSLRow = "1715000000.123456\tCjq1j4ZQx9QpXkLmN\t10.12.34.56\t44321\t" +
		"192.0.2.10\t443\tTLSv12\tvpn.campus.edu\tT\t" +
		"aab2c8f0e14d99\tddc1e2f3a4b5c6\t3"
	allocX509Row = "1715000000.123456\tFxk2P41CWmPgqmnh2\taab2c8f0e14d99\t3\t0a1b2c3d\t" +
		"CN=Campus Issuing CA\\x2c Inc.,O=Campus\tCN=vpn.campus.edu,O=Campus\t" +
		"vpn.campus.edu,alt.campus.edu\t-\t-\t-\t" +
		"1700000000.000000\t1760000000.000000\trsa\t2048\tF"
)

// TestParseAllocGates pins the allocation budget of the zero-copy row
// parsers against a warm intern table — the steady state of a long-lived
// tailer, where every fingerprint, issuer, SNI, and IP has been seen
// before. A regression here (an accidental []byte->string conversion, a
// dropped memo) multiplies by ~1M events/s, so it fails loudly instead
// of surfacing as a throughput cliff two PRs later.
func TestParseAllocGates(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts include race-detector bookkeeping under -race")
	}

	it := newInternTable()
	var sslCols, x509Cols [][]byte
	sslCols = splitCols(sslCols, []byte(allocSSLRow))
	x509Cols = splitCols(x509Cols, []byte(allocX509Row))

	// Warm the intern table so the measurement sees steady state, and
	// fail fast if the rows themselves are malformed.
	if _, err := parseSSLCols(sslCols, it); err != nil {
		t.Fatalf("ssl row: %v", err)
	}
	if _, err := parseX509Cols(x509Cols, it); err != nil {
		t.Fatalf("x509 row: %v", err)
	}

	// parseSSLCols: one allocation — the UID, which is unique per row
	// and deliberately not interned.
	if got := testing.AllocsPerRun(200, func() {
		if _, err := parseSSLCols(sslCols, it); err != nil {
			t.Fatal(err)
		}
	}); got > 1 {
		t.Errorf("parseSSLCols: %.1f allocs/op on a warm intern table, want <= 1", got)
	}

	// parseX509Cols: the CertInfo itself, the per-row FileID, the
	// retained SerialHex, and the SAN slice header. Everything repeated
	// across rows (fingerprints, DNs, SAN strings) comes from the table.
	if got := testing.AllocsPerRun(200, func() {
		if _, err := parseX509Cols(x509Cols, it); err != nil {
			t.Fatal(err)
		}
	}); got > 5 {
		t.Errorf("parseX509Cols: %.1f allocs/op on a warm intern table, want <= 5", got)
	}
}
