package zeek

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/certmodel"
	"repro/internal/ids"
	"repro/internal/tlswire"
)

// Malformed-input handling: a real log pipeline sees corrupt files.

func TestReadSSLCorruptTimestamp(t *testing.T) {
	row := strings.Join([]string{
		"not-a-number", "Cx", "1.2.3.4", "1", "5.6.7.8", "443",
		"TLSv12", "-", "T", "(empty)", "(empty)", "1",
	}, "\t")
	in := "#path\tssl\n" + row + "\n"
	if _, err := ReadSSL(strings.NewReader(in)); err == nil {
		t.Fatal("corrupt timestamp accepted")
	}
}

func TestReadSSLCorruptPort(t *testing.T) {
	row := strings.Join([]string{
		"1.5", "Cx", "1.2.3.4", "eighty", "5.6.7.8", "443",
		"TLSv12", "-", "T", "(empty)", "(empty)", "1",
	}, "\t")
	in := "#path\tssl\n" + row + "\n"
	if _, err := ReadSSL(strings.NewReader(in)); err == nil {
		t.Fatal("corrupt port accepted")
	}
}

func TestReadX509CorruptRow(t *testing.T) {
	row := strings.Join([]string{
		"1.5", "F1", "fp", "three", "00", "-", "-",
		"(empty)", "(empty)", "(empty)", "(empty)",
		"1.0", "2.0", "ecdsa", "256", "F",
	}, "\t")
	in := "#path\tx509\n" + row + "\n"
	if _, err := ReadX509(strings.NewReader(in)); err == nil {
		t.Fatal("corrupt cert version accepted")
	}
}

func TestReadSSLSkipsCommentsAndBlankLines(t *testing.T) {
	var buf bytes.Buffer
	w := NewSSLWriter(&buf)
	rec := SSLRecord{TS: time.Unix(5, 0), UID: "Cx", OrigIP: "1.1.1.1", RespIP: "2.2.2.2", RespPort: 443, Weight: 1}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	noisy := "#close 2024\n\n" + buf.String() + "\n#close again\n"
	recs, err := ReadSSL(strings.NewReader(noisy))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("rows = %d", len(recs))
	}
}

// Property: SSL records survive a TSV round trip for arbitrary SNI and IP
// strings (the writer must escape whatever the wire hands it).
func TestSSLRoundTripProperty(t *testing.T) {
	f := func(sni string, port uint16, weight uint16, established bool) bool {
		if strings.ContainsAny(sni, "\x00") {
			return true // NUL never occurs in SNI; scanner treats lines as text
		}
		if strings.ContainsRune(sni, '\n') || strings.ContainsRune(sni, '\r') {
			sni = strings.NewReplacer("\n", "", "\r", "").Replace(sni)
		}
		rec := SSLRecord{
			TS: time.Unix(100, 0), UID: "Cprop", OrigIP: "10.0.0.1",
			OrigPort: 1024, RespIP: "192.0.2.1", RespPort: port,
			Version: "TLSv12", SNI: sni, Established: established,
			Weight: int64(weight) + 1,
		}
		var buf bytes.Buffer
		w := NewSSLWriter(&buf)
		if err := w.Write(&rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadSSL(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].SNI == sni && got[0].RespPort == port &&
			got[0].Established == established && got[0].Weight == int64(weight)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Truncated-capture handling: the analyzer must degrade gracefully when a
// capture cuts off mid-handshake (long-lived flows at collection start).
func TestAnalyzerTruncatedCapture(t *testing.T) {
	g, err := certmodel.NewGenerator(2)
	if err != nil {
		t.Fatal(err)
	}
	der, err := g.IssueLeaf(nil, certmodel.Spec{
		SubjectCN: "trunc.example.com",
		NotBefore: time.Unix(0, 0), NotAfter: time.Unix(1e9, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := ids.NewRNG(77)
	tr := tlswire.Synthesize(tlswire.TranscriptSpec{
		Version: tlswire.VersionTLS12, SNI: "trunc.example.com",
		ServerChain: [][]byte{der}, ClientChain: [][]byte{der},
		Established: true,
	}, rng)

	// Cut the server stream at every prefix length; the analyzer must
	// never panic, and whole-record prefixes must parse.
	for cut := 0; cut <= len(tr.ServerToClient); cut += 13 {
		a := NewAnalyzer(ids.NewRNG(1))
		_, err := a.AnalyzeStreams(ConnMeta{}, tr.ClientToServer, tr.ServerToClient[:cut])
		_ = err // some cuts error (truncated record) — that is correct behaviour
	}
	// Cutting the client stream below the ClientHello makes it non-TLS.
	a := NewAnalyzer(ids.NewRNG(2))
	if _, err := a.AnalyzeStreams(ConnMeta{}, tr.ClientToServer[:3], nil); err == nil {
		t.Fatal("3-byte prefix should not analyze")
	}
}

// Mid-capture start: a flow whose beginning was missed (application data
// only) must be rejected as not-TLS-handshake rather than misparsed.
func TestAnalyzerMidStreamCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := tlswire.WriteRecord(&buf, tlswire.RecordApplicationData, tlswire.VersionTLS12,
		[]byte("opaque ciphertext")); err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(ids.NewRNG(3))
	if _, err := a.AnalyzeStreams(ConnMeta{}, buf.Bytes(), nil); err == nil {
		t.Fatal("mid-stream capture should not sniff as a TLS handshake start")
	}
}

// Weighted totals must be conserved across serialization — percentages in
// every table depend on it.
func TestWeightConservation(t *testing.T) {
	var buf bytes.Buffer
	w := NewSSLWriter(&buf)
	var want int64
	for i := 0; i < 200; i++ {
		rec := SSLRecord{
			TS: time.Unix(int64(i), 0), UID: ids.UID("C" + strings.Repeat("x", 17)),
			OrigIP: "10.0.0.1", RespIP: "192.0.2.1", RespPort: 443,
			Version: "TLSv12", Weight: int64(i%97) + 1,
		}
		want += rec.Weight
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	recs, err := ReadSSL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for i := range recs {
		got += recs[i].Weight
	}
	if got != want {
		t.Fatalf("weight not conserved: %d vs %d", got, want)
	}
}
