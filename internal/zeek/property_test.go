package zeek

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/tlswire"
)

// Property: for ANY synthesized handshake, the analyzer's view agrees
// with the spec that produced it — mutuality, establishment, SNI, version
// visibility, and chain lengths. This is the wire path's end-to-end
// correctness contract, checked over randomized specs.
func TestAnalyzerSpecAgreementProperty(t *testing.T) {
	rng := ids.NewRNG(2024)
	f := func(sniSeed uint8, serverChainLen, clientChainLen uint8, tls13, established, requestCert bool) bool {
		spec := tlswire.TranscriptSpec{
			Version:           tlswire.VersionTLS12,
			Established:       established,
			RequestClientCert: requestCert,
		}
		if tls13 {
			spec.Version = tlswire.VersionTLS13
		}
		if sniSeed%3 != 0 {
			spec.SNI = "host" + string('a'+rune(sniSeed%26)) + ".example.com"
		}
		for i := 0; i < int(serverChainLen%3)+1; i++ {
			spec.ServerChain = append(spec.ServerChain, []byte{0x30, byte(i), byte(sniSeed)})
		}
		for i := 0; i < int(clientChainLen%3); i++ {
			spec.ClientChain = append(spec.ClientChain, []byte{0x31, byte(i), byte(sniSeed)})
		}

		tr := tlswire.Synthesize(spec, rng.Fork(string(rune(sniSeed))+string(rune(serverChainLen))))
		a := NewAnalyzer(ids.NewRNG(uint64(sniSeed)))
		rec, err := a.AnalyzeStreams(ConnMeta{}, tr.ClientToServer, tr.ServerToClient)
		if err != nil {
			return false
		}

		if rec.SNI != spec.SNI {
			return false
		}
		if tls13 {
			// TLS 1.3: certificates invisible, connection established.
			return rec.Version == "TLSv13" &&
				len(rec.ServerChain) == 0 && len(rec.ClientChain) == 0 &&
				rec.Established
		}
		if rec.Version != "TLSv12" {
			return false
		}
		if len(rec.ServerChain) != len(spec.ServerChain) {
			return false
		}
		if established {
			if !rec.Established {
				return false
			}
			if len(rec.ClientChain) != len(spec.ClientChain) {
				return false
			}
			// Mutuality holds exactly when the client presented a chain.
			if rec.IsMutual() != (len(spec.ClientChain) > 0) {
				return false
			}
		} else if rec.Established {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
