package zeek

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
)

func tailRec(uid string, ts time.Time) SSLRecord {
	return SSLRecord{
		TS: ts, UID: ids.UID(uid), OrigIP: "10.0.0.1", OrigPort: 1234,
		RespIP: "192.0.2.1", RespPort: 443, Version: "TLSv12", SNI: "example.com",
		Established: true, ServerChain: []ids.Fingerprint{"aa"}, Weight: 1,
	}
}

// writeRows appends ssl.log rows (with header on first write) to path.
func writeRows(t *testing.T, path string, recs ...SSLRecord) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	w := NewSSLWriter(f)
	w.opened = fi.Size() > 0 // only the first append writes the header
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTailIncremental drives the tailer through appends, a partial line,
// and its completion.
func TestTailIncremental(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	tl := NewSSLTail(path)

	// File absent: no rows, no error.
	if recs, err := tl.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("absent file: recs=%d err=%v", len(recs), err)
	}

	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts.Add(time.Minute)))
	recs, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].UID != "C1" || recs[1].UID != "C2" {
		t.Fatalf("first poll: %+v", recs)
	}

	// Nothing new.
	if recs, err := tl.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("idle poll: recs=%d err=%v", len(recs), err)
	}

	// Append a complete row plus a partial line; only the complete row
	// must be consumed.
	writeRows(t, path, tailRec("C3", ts.Add(2*time.Minute)))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1654050000.000000\tC4\t10.0.0.1\t1234"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].UID != "C3" {
		t.Fatalf("partial-line poll: %+v", recs)
	}

	// Complete the partial line; the row must come through intact.
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\t192.0.2.1\t443\tTLSv13\texample.com\tT\taa\t(empty)\t1\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].UID != "C4" || recs[0].Version != "TLSv13" {
		t.Fatalf("completed-line poll: %+v", recs)
	}
}

// TestTailOffsetResume checks that a fresh tailer seeked to a saved
// offset continues without re-reading or skipping rows.
func TestTailOffsetResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts.Add(time.Second)))

	tl := NewSSLTail(path)
	if recs, err := tl.Poll(); err != nil || len(recs) != 2 {
		t.Fatalf("prefix: recs=%d err=%v", len(recs), err)
	}
	saved := tl.Offset()

	writeRows(t, path, tailRec("C3", ts.Add(2*time.Second)))

	resumed := NewSSLTail(path)
	resumed.SetOffset(saved)
	recs, err := resumed.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].UID != "C3" {
		t.Fatalf("resume: %+v", recs)
	}
}

// TestTailRotation: a file that shrinks is re-read from the start.
func TestTailRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts.Add(time.Second)))

	tl := NewSSLTail(path)
	if recs, err := tl.Poll(); err != nil || len(recs) != 2 {
		t.Fatalf("prefix: recs=%d err=%v", len(recs), err)
	}

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	writeRows(t, path, tailRec("R1", ts.Add(time.Hour)))
	recs, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].UID != "R1" {
		t.Fatalf("rotation: %+v", recs)
	}
}

// TestTailRotationRegrow is the regression for the silent-loss bug: a
// rotated file that regrows PAST the old offset before the next poll
// must still be read from the start. The pre-fix tailer only recognized
// rotation when the new file was smaller than the saved offset, so it
// resumed mid-file and skipped every row before the old offset.
func TestTailRotationRegrow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts.Add(time.Second)))

	tl := NewSSLTail(path)
	reg := metrics.New()
	tl.Instrument(reg)
	if recs, err := tl.Poll(); err != nil || len(recs) != 2 {
		t.Fatalf("prefix: recs=%d err=%v", len(recs), err)
	}
	oldOffset := tl.Offset()

	// Rotate (remove + recreate) and immediately regrow beyond the old
	// offset: more rows than before, so the new size exceeds oldOffset.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	writeRows(t, path,
		tailRec("R1", ts.Add(time.Hour)),
		tailRec("R2", ts.Add(time.Hour+time.Second)),
		tailRec("R3", ts.Add(time.Hour+2*time.Second)),
		tailRec("R4", ts.Add(time.Hour+3*time.Second)))
	if fi, err := os.Stat(path); err != nil || fi.Size() <= oldOffset {
		t.Fatalf("setup: new file must exceed old offset %d (size=%v err=%v)", oldOffset, fi.Size(), err)
	}

	recs, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].UID != "R1" || recs[3].UID != "R4" {
		t.Fatalf("rotation+regrow lost rows: %+v", recs)
	}
	if got := reg.Counter("tail_rotations_total", "", "file", "ssl").Value(); got != 1 {
		t.Errorf("rotations metric = %d, want 1", got)
	}
}

// TestTailChunkedBacklog: a backlog far larger than the per-poll chunk
// is consumed across several polls, each bounded by the chunk size, with
// no row lost or duplicated.
func TestTailChunkedBacklog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	const rows = 200
	recs := make([]SSLRecord, rows)
	for i := range recs {
		recs[i] = tailRec(fmt.Sprintf("C%04d", i), ts.Add(time.Duration(i)*time.Second))
	}
	writeRows(t, path, recs...)

	tl := NewSSLTail(path)
	tl.t.chunk = 512 // force many polls; each row is ~100 bytes
	var got []SSLRecord
	polls := 0
	for {
		batch, err := tl.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		got = append(got, batch...)
		polls++
	}
	if len(got) != rows {
		t.Fatalf("drained %d rows across %d polls, want %d", len(got), polls, rows)
	}
	if polls < 3 {
		t.Fatalf("backlog consumed in %d polls; chunking is not limiting reads", polls)
	}
	for i := range got {
		if want := fmt.Sprintf("C%04d", i); string(got[i].UID) != want {
			t.Fatalf("row %d = %s, want %s", i, got[i].UID, want)
		}
	}
}

// TestTailSignatureFallback: when no FileInfo identity is retained (the
// state of a tailer resuming a checkpointed offset), a replaced file is
// still detected through the first-line signature.
func TestTailSignatureFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.log")
	// Raw tail over a headerless 2-field TSV so the signature is the
	// first data line, which differs across rotations (Zeek headers are
	// identical, so this exercises the mechanism directly).
	write := func(lines string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("alpha\t1\nbeta\t2\n")
	tl := &tail{path: path, wantPath: "t", nFields: 2}
	var got [][]string
	collect := func(cols [][]byte) error {
		row := make([]string, len(cols))
		for i, c := range cols {
			row[i] = string(c)
		}
		got = append(got, row)
		return nil
	}
	if err := tl.poll(collect); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("prefix rows = %d", len(got))
	}

	// Simulate a restart: identity lost, offset and signature retained.
	tl.info = nil
	// Replace with a different file that is larger than the offset; only
	// the signature can reveal the swap.
	write("gamma\t3\ndelta\t4\nepsilon\t5\n")
	got = nil
	if err := tl.poll(collect); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0][0] != "gamma" {
		t.Fatalf("signature fallback missed the rotation: %v", got)
	}
}

// TestTailOversizedLineStrict: in strict mode a line exceeding the chunk
// cap reports an error instead of stalling silently forever.
func TestTailOversizedLineStrict(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.log")
	if err := os.WriteFile(path, []byte(strings.Repeat("x", 2048)), 0o644); err != nil {
		t.Fatal(err)
	}
	tl := &tail{path: path, wantPath: "t", nFields: 2, chunk: 1024, opts: Options{Strict: true}}
	if err := tl.poll(func([][]byte) error { return nil }); err == nil {
		t.Fatal("oversized line must error, not spin")
	}
}

// TestTailOversizedLinePermissive: the default mode discards the
// oversized line (quarantining a prefix, counting one rejection) and
// resumes at the next newline — no input can wedge the tailer.
func TestTailOversizedLinePermissive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.log")
	content := strings.Repeat("x", 2048) + "\nok\t1\nok\t2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	q := NewQuarantine(io.Discard)
	tl := &tail{path: path, wantPath: "t", nFields: 2, chunk: 1024, opts: Options{Quarantine: q}}
	var got [][]string
	for i := 0; i < 10; i++ {
		if err := tl.poll(func(cols [][]byte) error {
			row := make([]string, len(cols))
			for i, c := range cols {
				row[i] = string(c)
			}
			got = append(got, row)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0][0] != "ok" {
		t.Fatalf("rows after oversized line = %v, want the 2 trailing rows", got)
	}
	if q.Count() != 1 {
		t.Fatalf("quarantined = %d, want 1 (the oversized line)", q.Count())
	}
	if off := tl.offset; off != int64(len(content)) {
		t.Fatalf("offset = %d, want %d (fully drained)", off, len(content))
	}
}

// appendRaw appends raw bytes to path.
func appendRaw(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
}

// TestTailPoisonPill is the regression for the tentpole bug: a malformed
// row appended mid-stream must be consumed exactly once (quarantined,
// counted under its reason), and every later row must still be
// delivered. The pre-fix tailer surfaced the row as a poll error on
// every cycle without a defined advance, so one corrupt line either
// spammed errors forever or silently cost the rows that shared its
// chunk.
func TestTailPoisonPill(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts))

	reg := metrics.New()
	q := NewQuarantine(io.Discard)
	tl := NewSSLTail(path)
	tl.SetOptions(Options{Quarantine: q, Metrics: reg})

	recs, err := tl.Poll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("prefix: recs=%d err=%v", len(recs), err)
	}

	// The poison pill: a weight of zero, then two healthy rows behind it.
	appendRaw(t, path, "1654041600.000000\tBAD\t10.0.0.1\t1234\t192.0.2.1\t443\tTLSv12\tx.com\tT\taa\t-\t0\n")
	writeRows(t, path, tailRec("C2", ts.Add(time.Second)), tailRec("C3", ts.Add(2*time.Second)))

	var after []SSLRecord
	for i := 0; i < 5; i++ {
		recs, err := tl.Poll()
		if err != nil {
			t.Fatalf("poll after poison pill: %v", err)
		}
		after = append(after, recs...)
	}
	if len(after) != 2 || after[0].UID != "C2" || after[1].UID != "C3" {
		t.Fatalf("rows after poison pill = %+v, want C2 and C3", after)
	}
	if q.Count() != 1 {
		t.Fatalf("quarantined = %d, want exactly 1 (no re-reads)", q.Count())
	}
	if got := reg.Counter(RejectMetric, "", "file", "ssl", "reason", string(RejectWeight)).Value(); got != 1 {
		t.Fatalf("reject counter = %d, want 1", got)
	}
}

// TestTailStrictRewind: in strict mode a malformed row fails the poll
// WITHOUT advancing the offset — nothing is silently dropped, the same
// error resurfaces on every retry, and rows behind the bad one stay
// unread until an operator repairs the log.
func TestTailStrictRewind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts))

	tl := NewSSLTail(path)
	tl.SetOptions(Options{Strict: true})
	if recs, err := tl.Poll(); err != nil || len(recs) != 1 {
		t.Fatalf("prefix: recs=%d err=%v", len(recs), err)
	}
	saved := tl.Offset()

	appendRaw(t, path, "not-a-timestamp\tBAD\t10.0.0.1\t1234\t192.0.2.1\t443\tTLSv12\tx.com\tT\taa\t-\t1\n")
	writeRows(t, path, tailRec("C2", ts.Add(time.Second)))

	var firstErr error
	for i := 0; i < 3; i++ {
		recs, err := tl.Poll()
		if err == nil {
			t.Fatalf("strict poll %d must fail on the malformed row (got %d rows)", i, len(recs))
		}
		if len(recs) != 0 {
			t.Fatalf("strict poll %d delivered %d rows past the malformed one", i, len(recs))
		}
		if firstErr == nil {
			firstErr = err
		} else if err.Error() != firstErr.Error() {
			t.Fatalf("strict error changed between retries: %v vs %v", firstErr, err)
		}
		if tl.Offset() != saved {
			t.Fatalf("strict mode advanced offset to %d past the bad row (saved %d)", tl.Offset(), saved)
		}
	}
	var re *RowError
	if !errors.As(firstErr, &re) || re.Reason != RejectTimestamp {
		t.Fatalf("strict error = %v, want a RowError with reason %s", firstErr, RejectTimestamp)
	}
}

// TestTailCRLF: the tailer must strip a trailing \r exactly like the
// batch reader's bufio.ScanLines does, or a CRLF log parses differently
// live than in batch (the last column grows a \r).
func TestTailCRLF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	content := "#separator \\x09\n#path\tssl\n" +
		"1654041600.000000\tC1\t10.0.0.1\t1234\t192.0.2.1\t443\tTLSv12\tx.com\tT\taa\t-\t7\r\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ReadSSL(f)
	f.Close()
	if err != nil || len(batch) != 1 {
		t.Fatalf("batch: recs=%d err=%v", len(batch), err)
	}

	tl := NewSSLTail(path)
	tailed, err := tl.Poll()
	if err != nil || len(tailed) != 1 {
		t.Fatalf("tail: recs=%d err=%v", len(tailed), err)
	}
	if tailed[0].Weight != 7 || tailed[0].Weight != batch[0].Weight {
		t.Fatalf("CRLF divergence: tail weight %d, batch weight %d", tailed[0].Weight, batch[0].Weight)
	}
}

// TestTailMetrics: bytes/rows/lag series reflect a poll.
func TestTailMetrics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts.Add(time.Second)))

	tl := NewSSLTail(path)
	reg := metrics.New()
	tl.Instrument(reg)
	if _, err := tl.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tail_rows_total", "", "file", "ssl").Value(); got != 2 {
		t.Errorf("rows metric = %d, want 2", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tail_bytes_read_total", "", "file", "ssl").Value(); got != uint64(fi.Size()) {
		t.Errorf("bytes metric = %d, want %d", got, fi.Size())
	}
	if got := reg.Gauge("tail_lag_bytes", "", "file", "ssl").Value(); got != 0 {
		t.Errorf("lag = %v, want 0 after full drain", got)
	}
	if got := reg.Histogram("tail_poll_seconds", "", nil, "file", "ssl").Count(); got == 0 {
		t.Error("poll duration histogram recorded nothing")
	}
}

// TestForEachSSLStop: ErrStop ends iteration cleanly.
func TestForEachSSLStop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts), tailRec("C3", ts))

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var seen int
	if err := ForEachSSL(f, func(r *SSLRecord) error {
		seen++
		if seen == 2 {
			return ErrStop
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("seen = %d, want 2", seen)
	}
}
