package zeek

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ids"
)

func tailRec(uid string, ts time.Time) SSLRecord {
	return SSLRecord{
		TS: ts, UID: ids.UID(uid), OrigIP: "10.0.0.1", OrigPort: 1234,
		RespIP: "192.0.2.1", RespPort: 443, Version: "TLSv12", SNI: "example.com",
		Established: true, ServerChain: []ids.Fingerprint{"aa"}, Weight: 1,
	}
}

// writeRows appends ssl.log rows (with header on first write) to path.
func writeRows(t *testing.T, path string, recs ...SSLRecord) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	w := NewSSLWriter(f)
	w.opened = fi.Size() > 0 // only the first append writes the header
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTailIncremental drives the tailer through appends, a partial line,
// and its completion.
func TestTailIncremental(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	tl := NewSSLTail(path)

	// File absent: no rows, no error.
	if recs, err := tl.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("absent file: recs=%d err=%v", len(recs), err)
	}

	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts.Add(time.Minute)))
	recs, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].UID != "C1" || recs[1].UID != "C2" {
		t.Fatalf("first poll: %+v", recs)
	}

	// Nothing new.
	if recs, err := tl.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("idle poll: recs=%d err=%v", len(recs), err)
	}

	// Append a complete row plus a partial line; only the complete row
	// must be consumed.
	writeRows(t, path, tailRec("C3", ts.Add(2*time.Minute)))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1654050000.000000\tC4\t10.0.0.1\t1234"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].UID != "C3" {
		t.Fatalf("partial-line poll: %+v", recs)
	}

	// Complete the partial line; the row must come through intact.
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\t192.0.2.1\t443\tTLSv13\texample.com\tT\taa\t(empty)\t1\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].UID != "C4" || recs[0].Version != "TLSv13" {
		t.Fatalf("completed-line poll: %+v", recs)
	}
}

// TestTailOffsetResume checks that a fresh tailer seeked to a saved
// offset continues without re-reading or skipping rows.
func TestTailOffsetResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts.Add(time.Second)))

	tl := NewSSLTail(path)
	if recs, err := tl.Poll(); err != nil || len(recs) != 2 {
		t.Fatalf("prefix: recs=%d err=%v", len(recs), err)
	}
	saved := tl.Offset()

	writeRows(t, path, tailRec("C3", ts.Add(2*time.Second)))

	resumed := NewSSLTail(path)
	resumed.SetOffset(saved)
	recs, err := resumed.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].UID != "C3" {
		t.Fatalf("resume: %+v", recs)
	}
}

// TestTailRotation: a file that shrinks is re-read from the start.
func TestTailRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts.Add(time.Second)))

	tl := NewSSLTail(path)
	if recs, err := tl.Poll(); err != nil || len(recs) != 2 {
		t.Fatalf("prefix: recs=%d err=%v", len(recs), err)
	}

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	writeRows(t, path, tailRec("R1", ts.Add(time.Hour)))
	recs, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].UID != "R1" {
		t.Fatalf("rotation: %+v", recs)
	}
}

// TestForEachSSLStop: ErrStop ends iteration cleanly.
func TestForEachSSLStop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssl.log")
	ts := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	writeRows(t, path, tailRec("C1", ts), tailRec("C2", ts), tailRec("C3", ts))

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var seen int
	if err := ForEachSSL(f, func(r *SSLRecord) error {
		seen++
		if seen == 2 {
			return ErrStop
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("seen = %d, want 2", seen)
	}
}
