package zeek

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The fuzzers below pin the malformed-input contract of the TSV layer:
//
//   - permissive reads never fail on row content, only on structural
//     errors (a #path header naming another log);
//   - every data line is either delivered or quarantined — none vanish;
//   - whatever the parser accepts survives a write/re-read round trip
//     (idempotence: re-parsing the rewrite yields the same records).
//
// They found real bugs during development: NaN/Inf timestamps accepted
// by ParseFloat, UnixNano overflow corrupting round-tripped timestamps,
// literal "-"/"(empty)" values colliding with the TSV sentinels, and
// CRLF handling diverging between the batch reader and the tailer.

// tsTolerance bounds the timestamp drift of one write/re-read cycle:
// formatTS rounds to microseconds and float64 has ~2µs ulps at the ±9.2e9
// extremes of the accepted range, so two conversions stay under 5µs.
const tsTolerance = 5 * time.Microsecond

// dataLines mimics the reader's line accounting: split on \n, drop a
// trailing \r (ScanLines does), skip blank and comment lines.
func dataLines(s string) int {
	n := 0
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n++
	}
	return n
}

// structuralErr reports whether err is one a permissive read is allowed
// to return: a #path mismatch smuggled into the fuzz input, or a line
// beyond the scanner's buffer cap.
func structuralErr(err error) bool {
	return strings.Contains(err.Error(), "log path") || errors.Is(err, bufio.ErrTooLong)
}

func FuzzParseSSLRow(f *testing.F) {
	f.Add([]byte("1700000000.000000\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\texample.com\tT\tab12,cd34\t-\t3\n"))
	f.Add([]byte("only\tthree\tfields\n"))
	f.Add([]byte("NaN\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\texample.com\tT\t-\t-\t3\n"))
	f.Add([]byte("1e300\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\texample.com\tT\t-\t-\t3\n"))
	f.Add([]byte("1700000000.0\tC1\t10.0.0.1\t70000\t10.0.0.2\t-1\tTLSv12\texample.com\tT\t-\t-\t3\n"))
	f.Add([]byte("1700000000.0\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\texample.com\tT\t-\t-\t0\n"))
	f.Add([]byte("1700000000.0\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\t(empty)\tT\t-\t-\t2\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		input := "#path\tssl\n" + string(data)
		q := NewQuarantine(io.Discard)
		var rows []SSLRecord
		err := ForEachSSLWith(strings.NewReader(input), Options{Quarantine: q}, func(r *SSLRecord) error {
			rows = append(rows, *r)
			return nil
		})
		if err != nil {
			if !structuralErr(err) {
				t.Fatalf("permissive read failed on row content: %v", err)
			}
			return
		}
		if got, want := len(rows)+int(q.Count()), dataLines(input); got != want {
			t.Fatalf("rows %d + rejected %d != %d data lines", len(rows), q.Count(), want)
		}
		for i := range rows {
			checkSSLRoundTrip(t, &rows[i])
		}
		checkSSLDifferential(t, input, newInternTable())
	})
}

func checkSSLRoundTrip(t *testing.T, r1 *SSLRecord) {
	t.Helper()
	var buf bytes.Buffer
	w := NewSSLWriter(&buf)
	if err := w.Write(r1); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	again, err := ReadSSL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("accepted record did not re-read: %v\nrewritten: %q", err, buf.String())
	}
	if len(again) != 1 {
		t.Fatalf("rewrite produced %d records, want 1", len(again))
	}
	r2 := again[0]
	if d := r2.TS.Sub(r1.TS); d < -tsTolerance || d > tsTolerance {
		t.Fatalf("timestamp drifted %v over round trip (%v -> %v)", d, r1.TS, r2.TS)
	}
	r2.TS = r1.TS
	if !recordsEqualSSL(r1, &r2) {
		t.Fatalf("round trip diverged:\n first: %+v\nsecond: %+v\nrewritten: %q", *r1, r2, buf.String())
	}
}

func recordsEqualSSL(a, b *SSLRecord) bool {
	if a.UID != b.UID || a.OrigIP != b.OrigIP || a.OrigPort != b.OrigPort ||
		a.RespIP != b.RespIP || a.RespPort != b.RespPort || a.Version != b.Version ||
		a.SNI != b.SNI || a.Established != b.Established || a.Weight != b.Weight {
		return false
	}
	if len(a.ServerChain) != len(b.ServerChain) || len(a.ClientChain) != len(b.ClientChain) {
		return false
	}
	for i := range a.ServerChain {
		if a.ServerChain[i] != b.ServerChain[i] {
			return false
		}
	}
	for i := range a.ClientChain {
		if a.ClientChain[i] != b.ClientChain[i] {
			return false
		}
	}
	return true
}

func FuzzParseX509Row(f *testing.F) {
	f.Add([]byte("1700000000.000000\tF1\tabcd12\t3\t0102\tCN=Root CA,O=Example\tCN=leaf.example.com\texample.com,www.example.com\t-\t-\t-\t1690000000.000000\t1790000000.000000\trsa\t2048\tF\n"))
	f.Add([]byte("too\tfew\n"))
	f.Add([]byte("+Inf\tF1\tabcd12\t3\t-\t-\t-\t-\t-\t-\t-\t0.0\t0.0\trsa\t2048\tF\n"))
	f.Add([]byte("0.0\tF1\tabcd12\t-7\t-\t-\t-\t-\t-\t-\t-\t0.0\t0.0\trsa\t2048\tF\n"))
	f.Add([]byte("0.0\tF1\tabcd12\t3\t-\t-\t-\t-\t-\t-\t-\t0.0\t0.0\trsa\tbits\tF\n"))
	f.Add([]byte("0.0\tF1\tabcd12\t3\t-\t-\t-\t-\t-\t-\t-\t99999999999\t0.0\trsa\t256\tT\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		input := "#path\tx509\n" + string(data)
		q := NewQuarantine(io.Discard)
		var rows []X509Record
		err := ForEachX509With(strings.NewReader(input), Options{Quarantine: q}, func(r *X509Record) error {
			rows = append(rows, *r)
			return nil
		})
		if err != nil {
			if !structuralErr(err) {
				t.Fatalf("permissive read failed on row content: %v", err)
			}
			return
		}
		if got, want := len(rows)+int(q.Count()), dataLines(input); got != want {
			t.Fatalf("rows %d + rejected %d != %d data lines", len(rows), q.Count(), want)
		}
		for i := range rows {
			checkX509RoundTrip(t, &rows[i])
		}
		checkX509Differential(t, input, newInternTable())
	})
}

func checkX509RoundTrip(t *testing.T, r1 *X509Record) {
	t.Helper()
	var buf bytes.Buffer
	w := NewX509Writer(&buf)
	if err := w.Write(r1); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	again, err := ReadX509(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("accepted record did not re-read: %v\nrewritten: %q", err, buf.String())
	}
	if len(again) != 1 {
		t.Fatalf("rewrite produced %d records, want 1", len(again))
	}
	r2 := again[0]
	for _, ts := range [][2]time.Time{
		{r1.TS, r2.TS},
		{r1.Cert.NotBefore, r2.Cert.NotBefore},
		{r1.Cert.NotAfter, r2.Cert.NotAfter},
	} {
		if d := ts[1].Sub(ts[0]); d < -tsTolerance || d > tsTolerance {
			t.Fatalf("timestamp drifted %v over round trip", d)
		}
	}
	c1, c2 := r1.Cert, r2.Cert
	if r1.ID != r2.ID || c1.Fingerprint != c2.Fingerprint || c1.Version != c2.Version ||
		c1.SerialHex != c2.SerialHex || c1.IssuerCN != c2.IssuerCN || c1.IssuerOrg != c2.IssuerOrg ||
		c1.SubjectCN != c2.SubjectCN || c1.SubjectOrg != c2.SubjectOrg ||
		c1.KeyAlg != c2.KeyAlg || c1.KeyBits != c2.KeyBits || c1.SelfSigned != c2.SelfSigned ||
		!strsEqual(c1.SANDNS, c2.SANDNS) || !strsEqual(c1.SANIP, c2.SANIP) ||
		!strsEqual(c1.SANEmail, c2.SANEmail) || !strsEqual(c1.SANURI, c2.SANURI) {
		t.Fatalf("round trip diverged:\n first: %+v / %+v\nsecond: %+v / %+v\nrewritten: %q",
			*r1, *c1, r2, *c2, buf.String())
	}
}

func strsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzEscapeField pins the exact encode/decode chain the writers and
// parsers apply to free-text fields (SNI, DNs, SAN elements): any string
// must survive it byte for byte, including the values that collide with
// the TSV sentinels ("-", "(empty)") and the escape characters
// themselves.
func FuzzEscapeField(f *testing.F) {
	for _, s := range []string{"", "-", "(empty)", "a\tb", "a\nb", `a\x09b`, `\`, "a,b", "\r", `\x2d`, "sni.example.com"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		enc := encodeField(s)
		if strings.ContainsAny(enc, "\t\n\r") {
			t.Fatalf("encodeField(%q) = %q leaks TSV structure", s, enc)
		}
		if enc == unsetField || enc == setEmpty {
			t.Fatalf("encodeField(%q) = %q collides with a TSV sentinel", s, enc)
		}
		// The writer applies orUnset after encoding; the parser applies
		// unsetOr before decoding. The full chain must be the identity.
		if got := unescapeField(string(unsetOr(appendOrUnset(nil, enc)))); got != s {
			t.Fatalf("round trip %q -> %q -> %q", s, enc, got)
		}
		// Decoding must also be idempotent-safe on already-decoded text
		// only through the encoder: encode(decode(encode)) == encode.
		if got := encodeField(unescapeField(enc)); got != enc {
			t.Fatalf("re-encode diverged: %q -> %q -> %q", enc, unescapeField(enc), got)
		}
	})
}

// FuzzTailChunking differentially tests the tailer against the batch
// reader: the same bytes, read as a file tailed chunk by chunk, must
// yield exactly the records and rejection count the in-memory reader
// produces — regardless of where the chunk boundaries fall.
func FuzzTailChunking(f *testing.F) {
	f.Add([]byte("1700000000.0\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\ta.com\tT\t-\t-\t1\nbadrow\n1700000001.0\tC2\t10.0.0.3\t52001\t10.0.0.4\t443\tTLSv13\tb.com\tF\t-\t-\t2\n"), uint16(32))
	f.Add([]byte("NaN\tC1\t10.0.0.1\t52000\t10.0.0.2\t443\tTLSv12\ta.com\tT\t-\t-\t1\r\n"), uint16(7))
	f.Add([]byte("#fields\tts\n\n1700000000.0\tC1\t10.0.0.1\t1\t10.0.0.2\t2\tv\ts\tT\t-\t-\t1\n"), uint16(200))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint16) {
		content := "#separator \\x09\n#path\tssl\n" + string(data)
		if !strings.HasSuffix(content, "\n") {
			// The tailer only delivers complete lines; terminate the last
			// one so both readers see the same row set.
			content += "\n"
		}

		qb := NewQuarantine(io.Discard)
		var batch []SSLRecord
		berr := ForEachSSLWith(strings.NewReader(content), Options{Quarantine: qb}, func(r *SSLRecord) error {
			batch = append(batch, *r)
			return nil
		})
		if berr != nil {
			// Structural failure (e.g. a "#path x509" line in the fuzz
			// data): the tailer fails the same way; nothing to compare.
			return
		}

		path := filepath.Join(t.TempDir(), "ssl.log")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		qt := NewQuarantine(io.Discard)
		tl := NewSSLTail(path)
		tl.SetOptions(Options{Quarantine: qt})
		// A fuzz-chosen tiny chunk exercises lines that straddle and
		// exceed chunk boundaries; the floor keeps every line in this
		// corpus deliverable so the oversized-line path (which batch
		// reading has no analogue for) does not fire.
		tl.t.chunk = int64(chunk) + 4096

		var tailed []SSLRecord
		for i := 0; i <= len(content)+8; i++ {
			recs, err := tl.Poll()
			if err != nil {
				t.Fatalf("permissive tail poll failed: %v", err)
			}
			tailed = append(tailed, recs...)
			if len(recs) == 0 && tl.Offset() == int64(len(content)) {
				break
			}
		}
		if tl.Offset() != int64(len(content)) {
			t.Fatalf("tail stalled at offset %d of %d", tl.Offset(), len(content))
		}

		if len(tailed) != len(batch) || qt.Count() != qb.Count() {
			t.Fatalf("tail saw %d rows / %d rejects, batch saw %d / %d",
				len(tailed), qt.Count(), len(batch), qb.Count())
		}
		for i := range batch {
			if !tailed[i].TS.Equal(batch[i].TS) {
				t.Fatalf("row %d: tail TS %v != batch TS %v", i, tailed[i].TS, batch[i].TS)
			}
			tailed[i].TS = batch[i].TS
			if !recordsEqualSSL(&tailed[i], &batch[i]) {
				t.Fatalf("row %d diverged:\n tail: %+v\nbatch: %+v", i, tailed[i], batch[i])
			}
		}
	})
}

// FuzzParseTS pins parseTS against the silent corruptions fuzzing
// originally surfaced: every accepted timestamp must round-trip through
// formatTS within tolerance (in particular, no UnixNano overflow), and
// NaN must never be accepted.
func FuzzParseTS(f *testing.F) {
	for _, s := range []string{"0", "1700000000.123456", "-6710083200.0", "8859283200.000000", "NaN", "+Inf", "9.3e9", "-1e18", "0x1p10"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ts, err := parseTS([]byte(s))
		if err != nil {
			return
		}
		back, err := parseTS([]byte(formatTS(ts)))
		if err != nil {
			t.Fatalf("accepted %q but formatTS output %q does not re-parse: %v", s, formatTS(ts), err)
		}
		if d := back.Sub(ts); d < -tsTolerance || d > tsTolerance {
			t.Fatalf("timestamp %q drifted %v through formatTS", s, d)
		}
		if f, _ := math.Modf(float64(ts.UnixNano())); math.IsNaN(f) {
			t.Fatalf("accepted %q produced NaN-derived time", s)
		}
	})
}

// forEachDataLine mimics the readers' line handling (CR strip, blank and
// comment skip) and yields each data line.
func forEachDataLine(s string, fn func(line string)) {
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fn(line)
	}
}

// sameRowError requires the two parsers to agree on acceptance and, when
// rejecting, on the quarantine reason — the taxonomy is part of the
// parser contract (dashboards alert per reason).
func sameRowError(t *testing.T, line string, gerr, werr error) bool {
	t.Helper()
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("parsers disagree on %q: new err %v, reference err %v", line, gerr, werr)
	}
	if gerr == nil {
		return true
	}
	var gre, wre *RowError
	if !errors.As(gerr, &gre) || !errors.As(werr, &wre) {
		t.Fatalf("non-RowError rejection for %q: new %v, reference %v", line, gerr, werr)
	}
	if gre.Reason != wre.Reason {
		t.Fatalf("reason diverged for %q: new %s, reference %s", line, gre.Reason, wre.Reason)
	}
	return false
}

// checkSSLDifferential runs every data line through the zero-copy parser
// (interned and unintered) and the string-based reference parser and
// requires identical results.
func checkSSLDifferential(t *testing.T, input string, it *internTable) {
	t.Helper()
	forEachDataLine(input, func(line string) {
		cols := strings.Split(line, fieldSep)
		if len(cols) != len(sslFields) {
			return // field-count rejection happens before either parser
		}
		want, werr := refParseSSLCols(cols)
		for _, tab := range []*internTable{it, nil} {
			got, gerr := parseSSLCols(splitCols(nil, []byte(line)), tab)
			if !sameRowError(t, line, gerr, werr) {
				continue
			}
			if !got.TS.Equal(want.TS) {
				t.Fatalf("TS diverged for %q: new %v, reference %v", line, got.TS, want.TS)
			}
			got.TS = want.TS
			if !recordsEqualSSL(&got, &want) {
				t.Fatalf("record diverged for %q:\n      new: %+v\nreference: %+v", line, got, want)
			}
		}
	})
}

// checkX509Differential is checkSSLDifferential for x509 rows.
func checkX509Differential(t *testing.T, input string, it *internTable) {
	t.Helper()
	forEachDataLine(input, func(line string) {
		cols := strings.Split(line, fieldSep)
		if len(cols) != len(x509Fields) {
			return
		}
		want, werr := refParseX509Cols(cols)
		for _, tab := range []*internTable{it, nil} {
			got, gerr := parseX509Cols(splitCols(nil, []byte(line)), tab)
			if !sameRowError(t, line, gerr, werr) {
				continue
			}
			if !got.TS.Equal(want.TS) || !got.Cert.NotBefore.Equal(want.Cert.NotBefore) ||
				!got.Cert.NotAfter.Equal(want.Cert.NotAfter) {
				t.Fatalf("timestamps diverged for %q", line)
			}
			g, w := got.Cert, want.Cert
			if got.ID != want.ID || g.Fingerprint != w.Fingerprint || g.Version != w.Version ||
				g.SerialHex != w.SerialHex || g.IssuerCN != w.IssuerCN || g.IssuerOrg != w.IssuerOrg ||
				g.SubjectCN != w.SubjectCN || g.SubjectOrg != w.SubjectOrg ||
				g.KeyAlg != w.KeyAlg || g.KeyBits != w.KeyBits || g.SelfSigned != w.SelfSigned ||
				!strsEqual(g.SANDNS, w.SANDNS) || !strsEqual(g.SANIP, w.SANIP) ||
				!strsEqual(g.SANEmail, w.SANEmail) || !strsEqual(g.SANURI, w.SANURI) {
				t.Fatalf("record diverged for %q:\n      new: %+v\nreference: %+v", line, *g, *w)
			}
		}
	})
}
