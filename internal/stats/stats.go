// Package stats provides the aggregation primitives the analyses are built
// from: weighted counters, top-K extraction, quantiles, histograms, monthly
// time series, and a plain-text table renderer used by cmd/mtlsreport to
// print every table and figure of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a weighted string→count accumulator. The zero value is not
// usable; construct with NewCounter.
type Counter struct {
	m     map[string]int64
	total int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]int64)} }

// Add adds weight w to key.
func (c *Counter) Add(key string, w int64) {
	c.m[key] += w
	c.total += w
}

// Inc adds 1 to key.
func (c *Counter) Inc(key string) { c.Add(key, 1) }

// Get returns the count for key.
func (c *Counter) Get(key string) int64 { return c.m[key] }

// Total returns the sum of all counts.
func (c *Counter) Total() int64 { return c.total }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.m) }

// Share returns key's fraction of the total, or 0 for an empty counter.
func (c *Counter) Share(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.m[key]) / float64(c.total)
}

// KV is one counter entry.
type KV struct {
	Key   string
	Count int64
}

// Top returns the k highest-count entries, ties broken lexicographically so
// output is deterministic. k <= 0 returns all entries sorted.
func (c *Counter) Top(k int) []KV {
	out := make([]KV, 0, len(c.m))
	for key, n := range c.m {
		out = append(out, KV{key, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Keys returns all keys sorted lexicographically.
func (c *Counter) Keys() []string {
	ks := make([]string, 0, len(c.m))
	for k := range c.m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TwoWay is a weighted (row, col)→count table, e.g. (issuer category ×
// information type).
type TwoWay struct {
	m    map[string]map[string]int64
	rowT map[string]int64
	colT map[string]int64
	tot  int64
}

// NewTwoWay returns an empty two-way table.
func NewTwoWay() *TwoWay {
	return &TwoWay{
		m:    make(map[string]map[string]int64),
		rowT: make(map[string]int64),
		colT: make(map[string]int64),
	}
}

// Add adds weight w to cell (row, col).
func (t *TwoWay) Add(row, col string, w int64) {
	inner, ok := t.m[row]
	if !ok {
		inner = make(map[string]int64)
		t.m[row] = inner
	}
	inner[col] += w
	t.rowT[row] += w
	t.colT[col] += w
	t.tot += w
}

// Get returns the count in cell (row, col).
func (t *TwoWay) Get(row, col string) int64 { return t.m[row][col] }

// RowTotal returns the sum across a row.
func (t *TwoWay) RowTotal(row string) int64 { return t.rowT[row] }

// ColTotal returns the sum down a column.
func (t *TwoWay) ColTotal(col string) int64 { return t.colT[col] }

// Total returns the grand total.
func (t *TwoWay) Total() int64 { return t.tot }

// Rows returns row labels sorted by descending row total then name.
func (t *TwoWay) Rows() []string {
	rs := make([]string, 0, len(t.rowT))
	for r := range t.rowT {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool {
		if t.rowT[rs[i]] != t.rowT[rs[j]] {
			return t.rowT[rs[i]] > t.rowT[rs[j]]
		}
		return rs[i] < rs[j]
	})
	return rs
}

// Cols returns column labels sorted lexicographically.
func (t *TwoWay) Cols() []string {
	cs := make([]string, 0, len(t.colT))
	for c := range t.colT {
		cs = append(cs, c)
	}
	sort.Strings(cs)
	return cs
}

// RowShare returns cell/rowTotal, or 0 when the row is empty.
func (t *TwoWay) RowShare(row, col string) float64 {
	rt := t.rowT[row]
	if rt == 0 {
		return 0
	}
	return float64(t.m[row][col]) / float64(rt)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using nearest-rank
// on a sorted copy; it matches the paper's "50th/75th/99th/100th" style.
// An empty slice yields 0.
func Quantile(xs []int64, q float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]int64, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return quantileSorted(s, q)
}

// Quantiles computes several quantiles with a single sort.
func Quantiles(xs []int64, qs ...float64) []int64 {
	out := make([]int64, len(qs))
	if len(xs) == 0 {
		return out
	}
	s := make([]int64, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

func quantileSorted(s []int64, q float64) int64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Histogram is a fixed-bucket histogram over int64 values with explicit
// upper bounds; values above the last bound land in the overflow bucket.
type Histogram struct {
	bounds []int64 // upper bound of each bucket (inclusive)
	counts []int64 // len(bounds)+1, last is overflow
	total  int64
}

// NewHistogram creates a histogram; bounds must be strictly increasing.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe adds weight w at value v.
func (h *Histogram) Observe(v int64, w int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i] += w
	h.total += w
}

// Bucket returns the count of bucket i (the last index is overflow).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets including overflow.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Total returns the total observed weight.
func (h *Histogram) Total() int64 { return h.total }

// Bound returns the upper bound of bucket i; overflow reports max int64.
func (h *Histogram) Bound(i int) int64 {
	if i >= len(h.bounds) {
		return math.MaxInt64
	}
	return h.bounds[i]
}

// MonthKey is "YYYY-MM", the granularity of Figure 1.
type MonthKey string

// MonthSeries accumulates per-month numerator/denominator pairs, producing
// the mTLS-share trend of Figure 1.
type MonthSeries struct {
	num map[MonthKey]int64
	den map[MonthKey]int64
}

// NewMonthSeries returns an empty series.
func NewMonthSeries() *MonthSeries {
	return &MonthSeries{num: make(map[MonthKey]int64), den: make(map[MonthKey]int64)}
}

// Add accumulates num/den for a month.
func (m *MonthSeries) Add(k MonthKey, num, den int64) {
	m.num[k] += num
	m.den[k] += den
}

// Point is one month of the series.
type Point struct {
	Month MonthKey
	Num   int64
	Den   int64
}

// Ratio returns Num/Den (0 when Den == 0).
func (p Point) Ratio() float64 {
	if p.Den == 0 {
		return 0
	}
	return float64(p.Num) / float64(p.Den)
}

// Points returns the series in chronological (lexicographic) order.
func (m *MonthSeries) Points() []Point {
	keys := make([]MonthKey, 0, len(m.den))
	for k := range m.den {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Point, len(keys))
	for i, k := range keys {
		out[i] = Point{Month: k, Num: m.num[k], Den: m.den[k]}
	}
	return out
}

// Pct formats a ratio as a percentage with two decimals ("63.60").
func Pct(x float64) string { return fmt.Sprintf("%.2f", x*100) }

// Table renders aligned plain-text tables; every reproduced paper table is
// printed through it.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
