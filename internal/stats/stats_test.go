package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	c.Add("b", 5)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Get("missing") != 0 {
		t.Fatalf("counts wrong: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if c.Total() != 7 {
		t.Fatalf("total = %d, want 7", c.Total())
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if got := c.Share("b"); math.Abs(got-5.0/7.0) > 1e-12 {
		t.Fatalf("share = %g", got)
	}
}

func TestCounterShareEmpty(t *testing.T) {
	if NewCounter().Share("x") != 0 {
		t.Fatal("empty counter share should be 0")
	}
}

func TestCounterTopDeterministic(t *testing.T) {
	c := NewCounter()
	c.Add("zzz", 3)
	c.Add("aaa", 3)
	c.Add("big", 10)
	top := c.Top(2)
	if top[0].Key != "big" || top[1].Key != "aaa" {
		t.Fatalf("top = %+v", top)
	}
	all := c.Top(0)
	if len(all) != 3 {
		t.Fatalf("Top(0) should return all, got %d", len(all))
	}
}

func TestCounterKeysSorted(t *testing.T) {
	c := NewCounter()
	for _, k := range []string{"m", "a", "z"} {
		c.Inc(k)
	}
	ks := c.Keys()
	if !sort.StringsAreSorted(ks) || len(ks) != 3 {
		t.Fatalf("keys = %v", ks)
	}
}

func TestTwoWay(t *testing.T) {
	tw := NewTwoWay()
	tw.Add("r1", "c1", 2)
	tw.Add("r1", "c2", 3)
	tw.Add("r2", "c1", 5)
	if tw.Get("r1", "c2") != 3 {
		t.Fatal("cell wrong")
	}
	if tw.RowTotal("r1") != 5 || tw.ColTotal("c1") != 7 || tw.Total() != 10 {
		t.Fatal("totals wrong")
	}
	if got := tw.RowShare("r1", "c1"); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("row share = %g", got)
	}
	if tw.RowShare("empty", "c1") != 0 {
		t.Fatal("empty row share should be 0")
	}
	rows := tw.Rows()
	if rows[0] != "r2" && tw.RowTotal(rows[0]) < tw.RowTotal(rows[1]) {
		t.Fatalf("rows not sorted by total: %v", rows)
	}
	cols := tw.Cols()
	if !sort.StringsAreSorted(cols) {
		t.Fatalf("cols not sorted: %v", cols)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	xs := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1}, {0.5, 5}, {0.75, 8}, {0.99, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	xs := []int64{9, 1, 7, 3, 5}
	qs := []float64{0.1, 0.5, 0.9}
	multi := Quantiles(xs, qs...)
	for i, q := range qs {
		if single := Quantile(xs, q); single != multi[i] {
			t.Fatalf("q=%.2f: %d vs %d", q, single, multi[i])
		}
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileProperty(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int64, len(raw))
		var lo, hi int64 = math.MaxInt64, math.MinInt64
		for i, v := range raw {
			xs[i] = int64(v)
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		return va <= vb && va >= lo && vb <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	h.Observe(5, 1)
	h.Observe(10, 1)  // inclusive upper bound
	h.Observe(11, 1)  // second bucket
	h.Observe(999, 2) // third bucket
	h.Observe(5000, 7)
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(2) != 2 || h.Bucket(3) != 7 {
		t.Fatalf("buckets = %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.Total() != 12 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Buckets() != 4 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	if h.Bound(0) != 10 || h.Bound(3) != math.MaxInt64 {
		t.Fatal("bounds wrong")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5)
}

func TestMonthSeries(t *testing.T) {
	m := NewMonthSeries()
	m.Add("2022-05", 2, 100)
	m.Add("2022-05", 1, 50)
	m.Add("2022-06", 4, 100)
	pts := m.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Month != "2022-05" || pts[1].Month != "2022-06" {
		t.Fatalf("order wrong: %+v", pts)
	}
	if got := pts[0].Ratio(); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("ratio = %g", got)
	}
	if (Point{Month: "x"}).Ratio() != 0 {
		t.Fatal("zero-den ratio should be 0")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.636) != "63.60" {
		t.Fatalf("Pct = %q", Pct(0.636))
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "name", "count")
	tbl.AddRow("alpha", "10")
	tbl.AddRow("b")
	s := tbl.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "alpha") {
		t.Fatalf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if tbl.NumRows() != 2 {
		t.Fatal("NumRows wrong")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if got := Mean([]int64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %g", got)
	}
}
