package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleCounter() {
	c := stats.NewCounter()
	c.Add("443", 90)
	c.Add("20017", 25)
	c.Add("636", 6)
	for _, kv := range c.Top(2) {
		fmt.Printf("%s %s%%\n", kv.Key, stats.Pct(c.Share(kv.Key)))
	}
	// Output:
	// 443 74.38%
	// 20017 20.66%
}

func ExampleQuantiles() {
	spread := []int64{1, 1, 1, 1, 2, 2, 7, 43, 1851}
	q := stats.Quantiles(spread, 0.50, 0.75, 0.99, 1.0)
	fmt.Println(q)
	// Output:
	// [2 7 1851 1851]
}

func ExampleMonthSeries() {
	m := stats.NewMonthSeries()
	m.Add("2022-05", 199, 10000)
	m.Add("2024-03", 361, 10000)
	for _, p := range m.Points() {
		fmt.Printf("%s %s%%\n", p.Month, stats.Pct(p.Ratio()))
	}
	// Output:
	// 2022-05 1.99%
	// 2024-03 3.61%
}
