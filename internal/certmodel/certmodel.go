// Package certmodel defines the certificate metadata model used throughout
// the reproduction, mirroring the fields Zeek's x509.log extracts from
// certificates exchanged during TLS negotiation (§3.1): serial number,
// issuer, subject, validity window, SANs, and key parameters.
//
// Two construction paths exist:
//
//   - the wire path builds real DER certificates (see gen.go) and parses
//     them back with ParseDER, proving the model round-trips through
//     genuine X.509 encoding; and
//   - the bulk path fills CertInfo directly from the workload generator,
//     carrying a synthetic fingerprint, so million-certificate experiments
//     do not pay for public-key cryptography.
//
// Both paths feed the identical analysis code.
package certmodel

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ids"
)

// KeyAlg enumerates public-key algorithms the analyses care about.
type KeyAlg int

const (
	KeyUnknown KeyAlg = iota
	KeyRSA
	KeyECDSA
)

// String implements fmt.Stringer.
func (k KeyAlg) String() string {
	switch k {
	case KeyRSA:
		return "rsa"
	case KeyECDSA:
		return "ecdsa"
	default:
		return "unknown"
	}
}

// CertInfo is the per-certificate record, one row of x509.log.
type CertInfo struct {
	// Fingerprint is the SHA-256 of the DER bytes (wire path) or of the
	// synthetic identity (bulk path); it is the "unique certificate" key.
	Fingerprint ids.Fingerprint

	// SerialHex is the certificate serial number in uppercase hex without
	// leading zero bytes stripped — exactly as issued, because §5.1.2's
	// dummy-serial analysis depends on the literal value ("00", "024680").
	SerialHex string

	// Version is the X.509 version number (1 or 3 in practice; §5.1.1
	// flags version-1 certificates from dummy issuers).
	Version int

	// Issuer distinguished-name components.
	IssuerCN  string
	IssuerOrg string

	// Subject distinguished-name components.
	SubjectCN  string
	SubjectOrg string

	// SAN values by general-name type (OpenSSL's GEN_DNS / GEN_IPADD /
	// GEN_EMAIL / GEN_URI; §6.1.2).
	SANDNS   []string
	SANIP    []string
	SANEmail []string
	SANURI   []string

	// Validity window. The paper's §5.3.1 certificates have NotBefore
	// AFTER NotAfter; the model must represent that faithfully, so no
	// invariant is enforced here.
	NotBefore time.Time
	NotAfter  time.Time

	// Key parameters.
	KeyAlg  KeyAlg
	KeyBits int

	// SelfSigned reports issuer DN == subject DN.
	SelfSigned bool

	// DER holds the raw encoding when the certificate came off the wire;
	// nil on the bulk path.
	DER []byte `json:"-"`
}

// ValidityDays returns NotAfter−NotBefore in whole days; negative for
// incorrect-date certificates (§5.3.1).
func (c *CertInfo) ValidityDays() int64 {
	return int64(c.NotAfter.Sub(c.NotBefore) / (24 * time.Hour))
}

// HasIncorrectDates reports a not_valid_before that does not precede
// not_valid_after — the Figure 3 misconfiguration. Identical timestamps
// also qualify (the paper's ayoba.me case).
func (c *CertInfo) HasIncorrectDates() bool {
	return !c.NotBefore.Before(c.NotAfter)
}

// ExpiredAt reports whether the certificate is expired at t. Certificates
// with incorrect dates are treated as expired whenever t is past NotAfter,
// matching the validation behaviour the paper probes.
func (c *CertInfo) ExpiredAt(t time.Time) bool {
	return t.After(c.NotAfter)
}

// DaysExpiredAt returns how many whole days past NotAfter t is (0 when not
// expired) — the x-axis of Figure 5.
func (c *CertInfo) DaysExpiredAt(t time.Time) int64 {
	if !c.ExpiredAt(t) {
		return 0
	}
	return int64(t.Sub(c.NotAfter) / (24 * time.Hour))
}

// WeakKey reports keys disallowed by NIST SP 800-57 (RSA < 2048 bits after
// 2013-12-31), which §5.1.1 flags for dummy-issuer certificates.
func (c *CertInfo) WeakKey() bool {
	return c.KeyAlg == KeyRSA && c.KeyBits > 0 && c.KeyBits < 2048
}

// MissingIssuer reports an empty issuer organization AND common name —
// the Private-MissingIssuer category of §4.2.
func (c *CertInfo) MissingIssuer() bool {
	return strings.TrimSpace(c.IssuerOrg) == "" && strings.TrimSpace(c.IssuerCN) == ""
}

// IssuerKey returns the string the analyses group "same issuer" by: the
// organization when present, else the CN, else the empty string.
func (c *CertInfo) IssuerKey() string {
	if o := strings.TrimSpace(c.IssuerOrg); o != "" {
		return o
	}
	return strings.TrimSpace(c.IssuerCN)
}

// IssuerDN renders the issuer as a Zeek-style distinguished name.
func (c *CertInfo) IssuerDN() string { return FormatDN(c.IssuerCN, c.IssuerOrg) }

// SubjectDN renders the subject as a Zeek-style distinguished name.
func (c *CertInfo) SubjectDN() string { return FormatDN(c.SubjectCN, c.SubjectOrg) }

// SANSummary joins all SAN values for logging, sorted per type.
func (c *CertInfo) SANSummary() string {
	parts := make([]string, 0, 4)
	add := func(prefix string, vals []string) {
		if len(vals) == 0 {
			return
		}
		vs := append([]string(nil), vals...)
		sort.Strings(vs)
		parts = append(parts, prefix+strings.Join(vs, "|"))
	}
	add("dns=", c.SANDNS)
	add("ip=", c.SANIP)
	add("email=", c.SANEmail)
	add("uri=", c.SANURI)
	return strings.Join(parts, ";")
}

// FormatDN renders "CN=x,O=y" in Zeek's subject/issuer field style,
// omitting empty components. Values containing commas are escaped.
func FormatDN(cn, org string) string {
	var parts []string
	if cn != "" {
		parts = append(parts, "CN="+escapeDN(cn))
	}
	if org != "" {
		parts = append(parts, "O="+escapeDN(org))
	}
	return strings.Join(parts, ",")
}

// ParseDN inverts FormatDN, tolerating unknown attribute types.
func ParseDN(dn string) (cn, org string) {
	for _, part := range splitDN(dn) {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		switch strings.ToUpper(strings.TrimSpace(k)) {
		case "CN":
			cn = unescapeDN(v)
		case "O":
			org = unescapeDN(v)
		}
	}
	return cn, org
}

func escapeDN(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, ",", `\,`)
}

func unescapeDN(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			b.WriteByte(s[i])
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// splitDN splits on unescaped commas.
func splitDN(dn string) []string {
	var parts []string
	var cur strings.Builder
	for i := 0; i < len(dn); i++ {
		switch {
		case dn[i] == '\\' && i+1 < len(dn):
			cur.WriteByte(dn[i])
			i++
			cur.WriteByte(dn[i])
		case dn[i] == ',':
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(dn[i])
		}
	}
	if cur.Len() > 0 {
		parts = append(parts, cur.String())
	}
	return parts
}

// SyntheticFingerprint derives the bulk-path identity for a certificate
// from its distinguishing content, so that regenerating the same workload
// yields the same fingerprints.
func SyntheticFingerprint(c *CertInfo, discriminator string) ids.Fingerprint {
	var b strings.Builder
	b.WriteString(c.SerialHex)
	b.WriteByte('\n')
	b.WriteString(c.IssuerDN())
	b.WriteByte('\n')
	b.WriteString(c.SubjectDN())
	b.WriteByte('\n')
	b.WriteString(c.SANSummary())
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%d\n%d\n%d\n%d\n", c.NotBefore.Unix(), c.NotAfter.Unix(), c.KeyAlg, c.KeyBits)
	b.WriteString(discriminator)
	return ids.FingerprintString(b.String())
}

// Clock converts an absolute day offset from the study epoch into a time;
// the workload generator positions events on study days 0..~700.
var StudyEpoch = time.Date(2022, time.May, 1, 0, 0, 0, 0, time.UTC)

// DayToTime maps a study-day offset (day 0 = 2022-05-01) to a UTC time.
func DayToTime(day int) time.Time { return StudyEpoch.AddDate(0, 0, day) }

// TimeToMonth formats the Figure 1 month key.
func TimeToMonth(t time.Time) string { return t.Format("2006-01") }
