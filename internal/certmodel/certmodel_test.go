package certmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func TestValidityDays(t *testing.T) {
	c := &CertInfo{NotBefore: date(2022, 1, 1), NotAfter: date(2022, 1, 15)}
	if got := c.ValidityDays(); got != 14 {
		t.Fatalf("ValidityDays = %d, want 14", got)
	}
}

func TestIncorrectDates(t *testing.T) {
	ok := &CertInfo{NotBefore: date(2022, 1, 1), NotAfter: date(2023, 1, 1)}
	if ok.HasIncorrectDates() {
		t.Fatal("well-formed cert flagged")
	}
	// The paper's rcgen case: 1975 → 1757.
	bad := &CertInfo{NotBefore: date(1975, 1, 1), NotAfter: date(1757, 1, 1)}
	if !bad.HasIncorrectDates() {
		t.Fatal("reversed dates not flagged")
	}
	if bad.ValidityDays() >= 0 {
		t.Fatal("reversed dates should have negative validity")
	}
	// The ayoba.me case: identical timestamps.
	same := &CertInfo{NotBefore: date(2022, 6, 1), NotAfter: date(2022, 6, 1)}
	if !same.HasIncorrectDates() {
		t.Fatal("identical timestamps not flagged")
	}
}

func TestExpiry(t *testing.T) {
	c := &CertInfo{NotBefore: date(2020, 1, 1), NotAfter: date(2021, 1, 1)}
	if c.ExpiredAt(date(2020, 6, 1)) {
		t.Fatal("not yet expired")
	}
	if !c.ExpiredAt(date(2023, 9, 28)) {
		t.Fatal("should be expired")
	}
	// The Figure 5 Apple cluster: ~1000 days expired.
	if got := c.DaysExpiredAt(date(2023, 9, 28)); got != 1000 {
		t.Fatalf("DaysExpiredAt = %d, want 1000", got)
	}
	if got := c.DaysExpiredAt(date(2020, 6, 1)); got != 0 {
		t.Fatalf("DaysExpiredAt before expiry = %d, want 0", got)
	}
}

func TestWeakKey(t *testing.T) {
	weak := &CertInfo{KeyAlg: KeyRSA, KeyBits: 1024}
	if !weak.WeakKey() {
		t.Fatal("1024-bit RSA should be weak")
	}
	strong := &CertInfo{KeyAlg: KeyRSA, KeyBits: 2048}
	if strong.WeakKey() {
		t.Fatal("2048-bit RSA should not be weak")
	}
	ec := &CertInfo{KeyAlg: KeyECDSA, KeyBits: 256}
	if ec.WeakKey() {
		t.Fatal("P-256 should not be weak")
	}
}

func TestMissingIssuerAndIssuerKey(t *testing.T) {
	missing := &CertInfo{}
	if !missing.MissingIssuer() {
		t.Fatal("empty issuer should be missing")
	}
	org := &CertInfo{IssuerOrg: "Globus Online", IssuerCN: "FXP DCAU Cert"}
	if org.MissingIssuer() {
		t.Fatal("populated issuer flagged missing")
	}
	if org.IssuerKey() != "Globus Online" {
		t.Fatalf("IssuerKey = %q", org.IssuerKey())
	}
	cnOnly := &CertInfo{IssuerCN: "ViptelaClient"}
	if cnOnly.IssuerKey() != "ViptelaClient" {
		t.Fatalf("IssuerKey CN fallback = %q", cnOnly.IssuerKey())
	}
}

func TestFormatParseDN(t *testing.T) {
	cases := []struct{ cn, org string }{
		{"example.com", "Example Inc"},
		{"", "Internet Widgits Pty Ltd"},
		{"host, with comma", `Org\with backslash`},
		{"", ""},
	}
	for _, c := range cases {
		dn := FormatDN(c.cn, c.org)
		cn, org := ParseDN(dn)
		if cn != c.cn || org != c.org {
			t.Errorf("round trip (%q,%q) -> %q -> (%q,%q)", c.cn, c.org, dn, cn, org)
		}
	}
}

func TestFormatDNProperty(t *testing.T) {
	f := func(cn, org string) bool {
		// Exclude strings with control chars that DN syntax never carries.
		gotCN, gotOrg := ParseDN(FormatDN(cn, org))
		return gotCN == cn && gotOrg == org
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSANSummaryDeterministic(t *testing.T) {
	a := &CertInfo{SANDNS: []string{"b.com", "a.com"}, SANIP: []string{"1.2.3.4"}}
	b := &CertInfo{SANDNS: []string{"a.com", "b.com"}, SANIP: []string{"1.2.3.4"}}
	if a.SANSummary() != b.SANSummary() {
		t.Fatal("SANSummary should be order independent")
	}
	if a.SANSummary() == "" {
		t.Fatal("non-empty SANs should summarize")
	}
	if (&CertInfo{}).SANSummary() != "" {
		t.Fatal("empty SANs should give empty summary")
	}
}

func TestSyntheticFingerprintStable(t *testing.T) {
	mk := func() *CertInfo {
		return &CertInfo{
			SerialHex: "00", IssuerOrg: "Globus Online", SubjectCN: "x",
			NotBefore: date(2022, 1, 1), NotAfter: date(2022, 1, 15),
		}
	}
	f1 := SyntheticFingerprint(mk(), "1")
	f2 := SyntheticFingerprint(mk(), "1")
	f3 := SyntheticFingerprint(mk(), "2")
	if f1 != f2 {
		t.Fatal("same content must fingerprint identically")
	}
	if f1 == f3 {
		t.Fatal("discriminator must distinguish re-issuances")
	}
	if !f1.Valid() {
		t.Fatal("fingerprint invalid")
	}
}

func TestDayToTimeAndMonth(t *testing.T) {
	if got := DayToTime(0); !got.Equal(date(2022, 5, 1)) {
		t.Fatalf("day 0 = %v", got)
	}
	if got := TimeToMonth(DayToTime(0)); got != "2022-05" {
		t.Fatalf("month = %q", got)
	}
	// Study runs 23 months: day 699 should land in 2024-03.
	if got := TimeToMonth(DayToTime(699)); got != "2024-03" {
		t.Fatalf("day 699 month = %q", got)
	}
}

func TestKeyAlgString(t *testing.T) {
	if KeyRSA.String() != "rsa" || KeyECDSA.String() != "ecdsa" || KeyUnknown.String() != "unknown" {
		t.Fatal("KeyAlg strings wrong")
	}
}
