package certmodel

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"fmt"
	"math/big"
	"net"
	"net/url"
	"strings"
	"time"

	"repro/internal/ids"
)

// Generator mints real DER-encoded X.509 certificates for the wire path.
// Key generation dominates the cost of issuance, so the generator keeps a
// small pool of ECDSA keys and reuses them across leaves — which, besides
// being fast, deliberately mirrors the paper's observation that dummy
// certificates reuse "generic keys" (§5.1.1).
type Generator struct {
	keys []*ecdsa.PrivateKey
	next int
}

// NewGenerator creates a generator with poolSize pre-generated P-256 keys
// (minimum 1).
func NewGenerator(poolSize int) (*Generator, error) {
	if poolSize < 1 {
		poolSize = 1
	}
	g := &Generator{keys: make([]*ecdsa.PrivateKey, poolSize)}
	for i := range g.keys {
		k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("certmodel: key pool: %w", err)
		}
		g.keys[i] = k
	}
	return g, nil
}

func (g *Generator) key() *ecdsa.PrivateKey {
	k := g.keys[g.next%len(g.keys)]
	g.next++
	return k
}

// LastKey returns the private key used by the most recent issuance — for
// callers that want to actually serve TLS with a minted leaf (the
// live-capture example).
func (g *Generator) LastKey() *ecdsa.PrivateKey {
	return g.keys[(g.next-1+len(g.keys))%len(g.keys)]
}

// CA is a certificate authority capable of signing leaves.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	DER  []byte
}

// Fingerprint returns the CA certificate's fingerprint.
func (ca *CA) Fingerprint() ids.Fingerprint { return ids.FingerprintBytes(ca.DER) }

// Spec describes a certificate to mint.
type Spec struct {
	SerialHex  string // hex serial; empty means random
	SubjectCN  string
	SubjectOrg string
	IssuerCN   string // only used for self-signed roots (ignored when a CA signs)
	IssuerOrg  string
	NotBefore  time.Time
	NotAfter   time.Time
	SANDNS     []string
	SANIP      []string
	SANEmail   []string
	SANURI     []string
	IsCA       bool
	Client     bool // include clientAuth EKU
	Server     bool // include serverAuth EKU
}

// NewRootCA mints a self-signed root.
func (g *Generator) NewRootCA(cn, org string, notBefore, notAfter time.Time) (*CA, error) {
	key := g.key()
	tpl, err := buildTemplate(Spec{
		SubjectCN: cn, SubjectOrg: org,
		NotBefore: notBefore, NotAfter: notAfter,
		IsCA: true,
	})
	if err != nil {
		return nil, err
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certmodel: self-sign %q: %w", cn, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, DER: der}, nil
}

// NewIntermediateCA mints an intermediate signed by parent.
func (g *Generator) NewIntermediateCA(parent *CA, cn, org string, notBefore, notAfter time.Time) (*CA, error) {
	key := g.key()
	tpl, err := buildTemplate(Spec{
		SubjectCN: cn, SubjectOrg: org,
		NotBefore: notBefore, NotAfter: notAfter,
		IsCA: true,
	})
	if err != nil {
		return nil, err
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, parent.Cert, &key.PublicKey, parent.Key)
	if err != nil {
		return nil, fmt.Errorf("certmodel: sign intermediate %q: %w", cn, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, DER: der}, nil
}

// IssueLeaf mints a leaf certificate signed by ca (or self-signed when ca
// is nil) and returns its DER encoding.
func (g *Generator) IssueLeaf(ca *CA, spec Spec) ([]byte, error) {
	key := g.key()
	tpl, err := buildTemplate(spec)
	if err != nil {
		return nil, err
	}
	parentCert := tpl
	signer := key
	if ca != nil {
		parentCert = ca.Cert
		signer = ca.Key
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, parentCert, &key.PublicKey, signer)
	if err != nil {
		return nil, fmt.Errorf("certmodel: issue leaf %q: %w", spec.SubjectCN, err)
	}
	return der, nil
}

func buildTemplate(spec Spec) (*x509.Certificate, error) {
	serial := new(big.Int)
	if spec.SerialHex != "" {
		b, err := hex.DecodeString(evenHex(spec.SerialHex))
		if err != nil {
			return nil, fmt.Errorf("certmodel: bad serial %q: %w", spec.SerialHex, err)
		}
		serial.SetBytes(b)
	} else {
		var err error
		serial, err = rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 120))
		if err != nil {
			return nil, err
		}
	}
	tpl := &x509.Certificate{
		SerialNumber: serial,
		Subject: pkix.Name{
			CommonName: spec.SubjectCN,
		},
		NotBefore:             spec.NotBefore,
		NotAfter:              spec.NotAfter,
		BasicConstraintsValid: true,
		IsCA:                  spec.IsCA,
		DNSNames:              spec.SANDNS,
		EmailAddresses:        spec.SANEmail,
	}
	if spec.SubjectOrg != "" {
		tpl.Subject.Organization = []string{spec.SubjectOrg}
	}
	for _, ip := range spec.SANIP {
		if parsed := net.ParseIP(ip); parsed != nil {
			tpl.IPAddresses = append(tpl.IPAddresses, parsed)
		}
	}
	for _, u := range spec.SANURI {
		if parsed, err := url.Parse(u); err == nil {
			tpl.URIs = append(tpl.URIs, parsed)
		}
	}
	if spec.IsCA {
		tpl.KeyUsage = x509.KeyUsageCertSign | x509.KeyUsageCRLSign
	} else {
		tpl.KeyUsage = x509.KeyUsageDigitalSignature
		if spec.Server {
			tpl.ExtKeyUsage = append(tpl.ExtKeyUsage, x509.ExtKeyUsageServerAuth)
		}
		if spec.Client {
			tpl.ExtKeyUsage = append(tpl.ExtKeyUsage, x509.ExtKeyUsageClientAuth)
		}
	}
	return tpl, nil
}

// evenHex pads a hex string to an even number of digits.
func evenHex(s string) string {
	if len(s)%2 == 1 {
		return "0" + s
	}
	return s
}

// ParseDER decodes a DER certificate into the analysis model. This is the
// wire path's bridge into the pipeline: whatever the monitor captures ends
// up as the same CertInfo the bulk path produces.
func ParseDER(der []byte) (*CertInfo, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certmodel: parse DER: %w", err)
	}
	return FromX509(cert, der), nil
}

// FromX509 converts an already-parsed certificate.
func FromX509(cert *x509.Certificate, der []byte) *CertInfo {
	info := &CertInfo{
		Fingerprint: ids.FingerprintBytes(der),
		SerialHex:   serialToHex(cert.SerialNumber),
		Version:     cert.Version,
		IssuerCN:    cert.Issuer.CommonName,
		IssuerOrg:   firstOf(cert.Issuer.Organization),
		SubjectCN:   cert.Subject.CommonName,
		SubjectOrg:  firstOf(cert.Subject.Organization),
		SANDNS:      append([]string(nil), cert.DNSNames...),
		SANEmail:    append([]string(nil), cert.EmailAddresses...),
		NotBefore:   cert.NotBefore,
		NotAfter:    cert.NotAfter,
		SelfSigned:  cert.Issuer.String() == cert.Subject.String(),
		DER:         der,
	}
	for _, ip := range cert.IPAddresses {
		info.SANIP = append(info.SANIP, ip.String())
	}
	for _, u := range cert.URIs {
		info.SANURI = append(info.SANURI, u.String())
	}
	switch pub := cert.PublicKey.(type) {
	case *ecdsa.PublicKey:
		info.KeyAlg = KeyECDSA
		info.KeyBits = pub.Curve.Params().BitSize
	default:
		if bits := rsaBits(cert); bits > 0 {
			info.KeyAlg = KeyRSA
			info.KeyBits = bits
		}
	}
	return info
}

// rsaBits extracts the modulus size from an RSA public key without
// importing crypto/rsa at the top of the hot path.
func rsaBits(cert *x509.Certificate) int {
	type rsaPub interface{ Size() int }
	if p, ok := cert.PublicKey.(rsaPub); ok {
		return p.Size() * 8
	}
	return 0
}

// serialToHex renders a serial the way the workload writes them: uppercase
// hex, preserving at least two digits so the literal "00" survives.
func serialToHex(n *big.Int) string {
	if n == nil || n.Sign() == 0 {
		return "00"
	}
	s := strings.ToUpper(n.Text(16))
	if len(s)%2 == 1 {
		s = "0" + s
	}
	return s
}

func firstOf(xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[0]
}
