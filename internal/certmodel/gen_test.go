package certmodel

import (
	"testing"
	"time"
)

func newGen(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRootCAAndLeafRoundTrip(t *testing.T) {
	g := newGen(t)
	nb, na := date(2022, 1, 1), date(2032, 1, 1)
	ca, err := g.NewRootCA("Test Root", "Test Org", nb, na)
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Cert.IsCA {
		t.Fatal("root not a CA")
	}
	if !ca.Fingerprint().Valid() {
		t.Fatal("CA fingerprint invalid")
	}

	der, err := g.IssueLeaf(ca, Spec{
		SerialHex:  "024680",
		SubjectCN:  "server.example.com",
		SubjectOrg: "Example",
		NotBefore:  date(2022, 6, 1),
		NotAfter:   date(2023, 6, 1),
		SANDNS:     []string{"server.example.com", "alt.example.com"},
		SANIP:      []string{"192.0.2.7"},
		SANEmail:   []string{"ops@example.com"},
		SANURI:     []string{"https://example.com/x"},
		Server:     true,
		Client:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ParseDER(der)
	if err != nil {
		t.Fatal(err)
	}
	if info.SerialHex != "024680" {
		t.Fatalf("serial = %q, want 024680", info.SerialHex)
	}
	if info.SubjectCN != "server.example.com" || info.SubjectOrg != "Example" {
		t.Fatalf("subject = %q / %q", info.SubjectCN, info.SubjectOrg)
	}
	if info.IssuerCN != "Test Root" || info.IssuerOrg != "Test Org" {
		t.Fatalf("issuer = %q / %q", info.IssuerCN, info.IssuerOrg)
	}
	if len(info.SANDNS) != 2 || len(info.SANIP) != 1 || len(info.SANEmail) != 1 || len(info.SANURI) != 1 {
		t.Fatalf("SANs = %+v", info)
	}
	if info.SANIP[0] != "192.0.2.7" {
		t.Fatalf("SAN IP = %q", info.SANIP[0])
	}
	if info.KeyAlg != KeyECDSA || info.KeyBits != 256 {
		t.Fatalf("key = %v/%d", info.KeyAlg, info.KeyBits)
	}
	if info.SelfSigned {
		t.Fatal("CA-signed leaf flagged self-signed")
	}
	if !info.NotBefore.Equal(date(2022, 6, 1)) || !info.NotAfter.Equal(date(2023, 6, 1)) {
		t.Fatalf("validity = %v..%v", info.NotBefore, info.NotAfter)
	}
	if info.Version != 3 {
		t.Fatalf("version = %d", info.Version)
	}
}

func TestSelfSignedLeaf(t *testing.T) {
	g := newGen(t)
	der, err := g.IssueLeaf(nil, Spec{
		SubjectCN: "selfie",
		NotBefore: date(2022, 1, 1),
		NotAfter:  date(2023, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ParseDER(der)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SelfSigned {
		t.Fatal("self-signed leaf not detected")
	}
}

func TestIntermediateChain(t *testing.T) {
	g := newGen(t)
	root, err := g.NewRootCA("Root", "RootOrg", date(2020, 1, 1), date(2040, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	inter, err := g.NewIntermediateCA(root, "Inter", "RootOrg", date(2020, 1, 1), date(2035, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if inter.Cert.Issuer.CommonName != "Root" {
		t.Fatalf("intermediate issuer = %q", inter.Cert.Issuer.CommonName)
	}
	der, err := g.IssueLeaf(inter, Spec{
		SubjectCN: "leaf", NotBefore: date(2022, 1, 1), NotAfter: date(2023, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ParseDER(der)
	if err != nil {
		t.Fatal(err)
	}
	if info.IssuerCN != "Inter" {
		t.Fatalf("leaf issuer = %q", info.IssuerCN)
	}
}

func TestDummySerialZero(t *testing.T) {
	g := newGen(t)
	der, err := g.IssueLeaf(nil, Spec{
		SerialHex: "00", SubjectCN: "globus-host",
		NotBefore: date(2023, 1, 1), NotAfter: date(2023, 1, 15),
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ParseDER(der)
	if err != nil {
		t.Fatal(err)
	}
	if info.SerialHex != "00" {
		t.Fatalf("serial = %q, want 00 (the Globus dummy serial)", info.SerialHex)
	}
	if got := info.ValidityDays(); got != 14 {
		t.Fatalf("validity = %d days, want 14", got)
	}
}

func TestIncorrectDatesOnWire(t *testing.T) {
	// Prove the wire path can mint and re-parse the paper's reversed
	// validity windows (Figure 3: not_before after not_after).
	g := newGen(t)
	der, err := g.IssueLeaf(nil, Spec{
		SubjectCN: "idrive-device",
		NotBefore: date(2019, 8, 2),
		NotAfter:  date(1849, 10, 24),
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ParseDER(der)
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasIncorrectDates() {
		t.Fatalf("incorrect dates lost in DER round trip: %v..%v", info.NotBefore, info.NotAfter)
	}
}

func TestParseDERRejectsGarbage(t *testing.T) {
	if _, err := ParseDER([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Fatal("garbage DER should fail")
	}
}

func TestFingerprintUniquePerLeaf(t *testing.T) {
	g := newGen(t)
	spec := Spec{SubjectCN: "x", NotBefore: date(2022, 1, 1), NotAfter: date(2023, 1, 1)}
	d1, err := g.IssueLeaf(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g.IssueLeaf(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := ParseDER(d1)
	i2, _ := ParseDER(d2)
	if i1.Fingerprint == i2.Fingerprint {
		t.Fatal("distinct issuances (random serials) should fingerprint differently")
	}
}

func TestEvenHex(t *testing.T) {
	if evenHex("1") != "01" || evenHex("024680") != "024680" {
		t.Fatal("evenHex wrong")
	}
}

func TestGeneratorKeyPoolCycles(t *testing.T) {
	g, err := NewGenerator(0) // clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if len(g.keys) != 1 {
		t.Fatalf("pool size = %d", len(g.keys))
	}
	// Issue more leaves than keys; must not panic.
	for i := 0; i < 3; i++ {
		if _, err := g.IssueLeaf(nil, Spec{
			SubjectCN: "c", NotBefore: time.Now(), NotAfter: time.Now().Add(time.Hour),
		}); err != nil {
			t.Fatal(err)
		}
	}
}
