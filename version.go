package mtls

import (
	"runtime"

	"repro/internal/distrib"
)

// Version identifies this build of the facade; daemons report it on
// /api/v1/version so a fleet operator can see what is deployed.
const Version = "0.7.0"

// Info is the build identity served by /api/v1/version: who is
// answering, what it was built from, and — the part peers act on —
// which snapshot schema versions it can exchange with the distributed
// tier (an aggregator picks the highest schema both sides support).
type Info struct {
	Service         string `json:"service"`
	Version         string `json:"version"`
	Go              string `json:"go"`
	SnapshotSchemas []int  `json:"snapshot_schemas"`
}

// BuildInfo describes this build for the named service.
func BuildInfo(service string) Info {
	return Info{
		Service:         service,
		Version:         Version,
		Go:              runtime.Version(),
		SnapshotSchemas: distrib.SupportedSchemas(),
	}
}
