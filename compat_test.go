package mtls

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/zeek"
)

// TestDeprecatedWrappersCompat is the golden compatibility check for the
// options API migration: every deprecated entry point must return
// results deep-equal to its options-based successor, so callers can
// migrate call by call without re-validating outputs.
func TestDeprecatedWrappersCompat(t *testing.T) {
	cfg := smallConfig()
	build := GenerateConfig(cfg)

	// AnalyzeWorkers(b, n) == Analyze(b, WithWorkers(n)), at the serial
	// and the sharded worker count.
	for _, workers := range []int{1, 2} {
		oldA := AnalyzeWorkers(GenerateConfig(cfg), workers)
		newA := Analyze(GenerateConfig(cfg), WithWorkers(workers))
		if !reflect.DeepEqual(oldA, newA) {
			t.Errorf("AnalyzeWorkers(b, %d) != Analyze(b, WithWorkers(%d))", workers, workers)
		}
	}

	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}

	// OpenLogsWith(dir, Options{Strict:true}) == OpenLogs(dir).
	oldDS, err := OpenLogsWith(dir, LogOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	newDS, err := OpenLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldDS, newDS) {
		t.Error("strict OpenLogsWith != OpenLogs")
	}

	// Permissive with metrics: same dataset, same rejection counters.
	oldReg, newReg := metrics.New(), metrics.New()
	oldDS, err = OpenLogsWith(dir, LogOptions{Metrics: oldReg})
	if err != nil {
		t.Fatal(err)
	}
	newDS, err = OpenLogs(dir, Permissive(), WithMetrics(newReg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldDS, newDS) {
		t.Error("permissive OpenLogsWith != OpenLogs(Permissive)")
	}
	oldTotal, oldBy := RejectTotals(oldReg)
	newTotal, newBy := RejectTotals(newReg)
	if oldTotal != newTotal || !reflect.DeepEqual(oldBy, newBy) {
		t.Errorf("reject counters diverge: %d %v vs %d %v", oldTotal, oldBy, newTotal, newBy)
	}

	// zeek streaming readers: the struct-threading form and the variadic
	// form visit identical rows.
	sslPath := filepath.Join(dir, "ssl.log")
	var oldRows, newRows []zeek.SSLRecord
	f1, err := os.Open(sslPath)
	if err != nil {
		t.Fatal(err)
	}
	err = zeek.ForEachSSLWith(f1, zeek.Options{Strict: true}, func(c *zeek.SSLRecord) error {
		oldRows = append(oldRows, *c)
		return nil
	})
	f1.Close()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(sslPath)
	if err != nil {
		t.Fatal(err)
	}
	err = zeek.ForEachSSL(f2, func(c *zeek.SSLRecord) error {
		newRows = append(newRows, *c)
		return nil
	}, zeek.Strict())
	f2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldRows, newRows) {
		t.Errorf("ForEachSSLWith visited %d rows, ForEachSSL %d; contents diverge", len(oldRows), len(newRows))
	}
}

// TestWriteLogsAtomic: WriteLogs commits via temp files and renames, so
// the directory never holds a truncated pair — stale temp files from a
// crashed writer are invisible to OpenLogs and cleaned by the next
// successful write, and rewriting over an existing pair leaves a
// strict-loadable result.
func TestWriteLogsAtomic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "logs")
	build := GenerateConfig(smallConfig())
	if err := WriteLogs(build.Raw, dir); err != nil {
		t.Fatal(err)
	}
	for _, tmp := range []string{"ssl.log.tmp", "x509.log.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, tmp)); !os.IsNotExist(err) {
			t.Errorf("%s left behind after a successful write", tmp)
		}
	}

	// Simulate a writer that crashed mid-emit: truncated temp files must
	// not affect a strict open, and the next write replaces them.
	for _, tmp := range []string{"ssl.log.tmp", "x509.log.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, tmp), []byte("1654041600.0\ttrunc"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenLogs(dir); err != nil {
		t.Fatalf("stale temp files broke a strict open: %v", err)
	}
	if err := WriteLogs(build.Raw, dir); err != nil {
		t.Fatalf("rewrite over stale temps: %v", err)
	}
	for _, tmp := range []string{"ssl.log.tmp", "x509.log.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, tmp)); !os.IsNotExist(err) {
			t.Errorf("%s left behind after rewrite", tmp)
		}
	}
	ds, err := OpenLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Conns) != len(build.Raw.Conns) || len(ds.Certs) != len(build.Raw.Certs) {
		t.Fatalf("rewrite lost rows: %d/%d conns, %d/%d certs",
			len(ds.Conns), len(build.Raw.Conns), len(ds.Certs), len(build.Raw.Certs))
	}
}
